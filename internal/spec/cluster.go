// The cluster admission model (DESIGN.md §16): an explicit-state
// rendering of the cross-shard two-phase lane — coordinator rounds
// acquiring prepared holds member by member, commits running leg bodies
// and releasing per member, aborts releasing everything — interleaved
// with ordinary single-member traffic. The same BFS machinery as the
// single-node model (explore.go), with its own state packing and
// invariant catalog:
//
//	C1 member isolation     — no two conflicting holds coexist on a member
//	C2 all-or-nothing       — an aborted round ran no leg; a finished
//	                          round ran every leg
//	C3 serializability      — two conflicting rounds never cross (i
//	                          before j on one member, j before i on
//	                          another)
//	C4 release on terminal  — terminal ops hold nothing
//	deadlock                — a non-terminal op with no enabled action
//
// The model covers the admission protocol, not crash faults: commits
// are infallible (the implementation reports a member lost mid-commit
// as an error to the client; the held legs still release via the
// member-side reaper, which the single-node model owns).
package spec

import (
	"fmt"
	"sort"
	"time"
)

// maxClusterOps and maxClusterMembers bound a configuration; cstate
// packs one uint16 per op.
const (
	maxClusterOps     = 6
	maxClusterMembers = 4
)

// ClusterOp is one operation of a cluster model configuration: a
// coordinator round over the members it touches (a single-member op is
// a round with one leg that skips the coordinator mutex — ordinary
// shard traffic).
type ClusterOp struct {
	// Name labels the op in counterexamples ("O0" etc. when empty).
	Name string
	// Touch lists the members the op reaches (deduplicated, any order).
	Touch []int
	// Res is the abstract resource the op uses on each touched member
	// (parallel to Touch). Two ops conflict on a member when both touch
	// it and their resources are equal or either is ResAll.
	Res []int
}

// ResAll is the whole-member resource (a scan's per-member footprint):
// it conflicts with everything on that member.
const ResAll = -1

// ClusterMutations deliberately breaks one clause of the cross-shard
// protocol so ClusterExplore can demonstrate the invariant catalog
// catches it.
type ClusterMutations struct {
	// ConcurrentRounds removes the coordinator mutex: several multi-leg
	// rounds may hold prepares at once. Alone this is SAFE — ascending
	// acquisition order is deadlock-free and hold-all-before-run keeps
	// rounds serializable — which is exactly what exploring it proves.
	ConcurrentRounds bool
	// UnorderedPrepare additionally lets odd-indexed ops acquire their
	// legs in descending member order (implies ConcurrentRounds). Caught
	// as a deadlock (the classic lock-ordering cycle) in an abort-free
	// world; with AllowAbort the hold-expiry escape restores liveness —
	// the model twin of the implementation's PrepareHold bound.
	UnorderedPrepare bool
	// EarlyCommit lets a round run and release a leg as soon as that leg
	// is prepared, before the remaining legs hold. Caught by C2 (a later
	// abort leaves the round half-applied) and, with ConcurrentRounds,
	// by C3 (two rounds cross).
	EarlyCommit bool
	// LeakOnAbort aborts without releasing already-acquired holds.
	// Caught by C4 and, transitively, as a deadlock.
	LeakOnAbort bool
}

// ClusterConfig is one closed world ClusterExplore enumerates.
type ClusterConfig struct {
	Name    string
	Members int
	Ops     []ClusterOp
	// AllowAbort adds abort actions for rounds that have not committed
	// anything yet (modeling prepare-hold expiry, client cancellation,
	// and coordinator failure before the commit point).
	AllowAbort bool
	Mutations  ClusterMutations
}

// Validate rejects configurations the checker cannot represent.
func (c *ClusterConfig) Validate() error {
	if c.Members <= 0 || c.Members > maxClusterMembers {
		return fmt.Errorf("spec: cluster config %q has %d members; want 1..%d", c.Name, c.Members, maxClusterMembers)
	}
	if len(c.Ops) == 0 {
		return fmt.Errorf("spec: cluster config %q has no ops", c.Name)
	}
	if len(c.Ops) > maxClusterOps {
		return fmt.Errorf("spec: cluster config %q has %d ops; max %d", c.Name, len(c.Ops), maxClusterOps)
	}
	for i, op := range c.Ops {
		if len(op.Touch) == 0 {
			return fmt.Errorf("spec: op %d touches no members", i)
		}
		if len(op.Res) != len(op.Touch) {
			return fmt.Errorf("spec: op %d has %d resources for %d members", i, len(op.Res), len(op.Touch))
		}
		seen := map[int]bool{}
		for _, m := range op.Touch {
			if m < 0 || m >= c.Members {
				return fmt.Errorf("spec: op %d touches out-of-range member %d", i, m)
			}
			if seen[m] {
				return fmt.Errorf("spec: op %d touches member %d twice", i, m)
			}
			seen[m] = true
		}
	}
	return nil
}

func (c *ClusterConfig) opName(i int) string {
	if n := c.Ops[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("O%d", i)
}

// cluster op phases.
const (
	cUnsub   uint16 = iota // not yet started
	cRound                 // round in progress (preparing and committing)
	cDone                  // every leg ran
	cAborted               // aborted; no leg may have run (C2)
)

// cstate packs the model state: one uint16 per op — bits 0-1 phase,
// bits 2-4 prepare pointer (legs acquired so far, in the op's leg
// order), bits 5-8 hold mask (members currently held), bits 9-12 ran
// mask (members whose leg body ran) — plus one order word recording,
// per ordered op pair, "i ran before j on some member" (the C3
// crossing detector). Comparable, so it keys the visited set directly.
type cstate struct {
	ops   [maxClusterOps]uint16
	order uint64 // bit i*maxClusterOps+j: op i ran before op j on some member
}

func (s *cstate) phase(i int) uint16       { return s.ops[i] & 0x3 }
func (s *cstate) prep(i int) int           { return int((s.ops[i] >> 2) & 0x7) }
func (s *cstate) hold(i int) uint16        { return (s.ops[i] >> 5) & 0xF }
func (s *cstate) ran(i int) uint16         { return (s.ops[i] >> 9) & 0xF }
func (s *cstate) setPhase(i int, p uint16) { s.ops[i] = s.ops[i]&^0x3 | p }
func (s *cstate) setPrep(i, v int)         { s.ops[i] = s.ops[i]&^(0x7<<2) | uint16(v)<<2 }
func (s *cstate) setHold(i int, m uint16)  { s.ops[i] = s.ops[i]&^(0xF<<5) | m<<5 }
func (s *cstate) setRan(i int, m uint16)   { s.ops[i] = s.ops[i]&^(0xF<<9) | m<<9 }

func orderBit(i, j int) uint64 { return 1 << uint(i*maxClusterOps+j) }

// ccompiled precomputes leg orders and the per-member conflict matrix.
type ccompiled struct {
	cfg      *ClusterConfig
	n        int
	legs     [][]int    // op → members in acquisition order
	touch    []uint16   // op → touched-member mask
	conflict [][]uint16 // conflict[i][j]: mask of members where i and j interfere
}

func compileCluster(cfg *ClusterConfig) (*ccompiled, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Ops)
	cc := &ccompiled{cfg: cfg, n: n,
		legs: make([][]int, n), touch: make([]uint16, n), conflict: make([][]uint16, n)}
	res := make([]map[int]int, n) // op → member → resource
	for i, op := range cfg.Ops {
		legs := append([]int(nil), op.Touch...)
		sort.Ints(legs)
		if cfg.Mutations.UnorderedPrepare && i%2 == 1 {
			for a, b := 0, len(legs)-1; a < b; a, b = a+1, b-1 {
				legs[a], legs[b] = legs[b], legs[a]
			}
		}
		cc.legs[i] = legs
		res[i] = map[int]int{}
		for k, m := range op.Touch {
			cc.touch[i] |= 1 << uint(m)
			res[i][m] = op.Res[k]
		}
	}
	for i := 0; i < n; i++ {
		cc.conflict[i] = make([]uint16, n)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for m, ri := range res[i] {
				if rj, ok := res[j][m]; ok && (ri == ResAll || rj == ResAll || ri == rj) {
					cc.conflict[i][j] |= 1 << uint(m)
				}
			}
		}
	}
	return cc, nil
}

// multiLeg reports whether op i is a coordinator round (vs plain
// single-member traffic).
func (cc *ccompiled) multiLeg(i int) bool { return len(cc.legs[i]) > 1 }

// roundsSerialized reports whether the coordinator mutex is in force.
func (cc *ccompiled) roundsSerialized() bool {
	m := cc.cfg.Mutations
	return !m.ConcurrentRounds && !m.UnorderedPrepare
}

type csuccEdge struct {
	step Step
	next cstate
}

// successors enumerates every enabled action of every op.
func (cc *ccompiled) successors(s cstate) []csuccEdge {
	var out []csuccEdge
	mut := cc.cfg.Mutations

	roundActive := false
	for i := 0; i < cc.n; i++ {
		if cc.multiLeg(i) && s.phase(i) == cRound {
			roundActive = true
		}
	}

	for i := 0; i < cc.n; i++ {
		legs := cc.legs[i]
		switch s.phase(i) {
		case cUnsub:
			if cc.multiLeg(i) && roundActive && cc.roundsSerialized() {
				continue // coordinator mutex: one round at a time
			}
			ns := s
			ns.setPhase(i, cRound)
			out = append(out, csuccEdge{Step{"start", i}, ns})

		case cRound:
			// Prepare the next leg if its member admits the hold.
			if p := s.prep(i); p < len(legs) {
				m := legs[p]
				bit := uint16(1) << uint(m)
				free := true
				for j := 0; j < cc.n && free; j++ {
					if j != i && s.hold(j)&cc.conflict[i][j]&bit != 0 {
						free = false
					}
				}
				if free {
					ns := s
					ns.setPrep(i, p+1)
					ns.setHold(i, s.hold(i)|bit)
					out = append(out, csuccEdge{Step{"prepare", i}, ns})
				}
			}
			// Commit legs: each runs the leg body, records ordering against
			// every op that already ran on that member, and releases the
			// leg's hold. Unmutated, commits start only once every leg
			// holds (the atomicity linchpin) and proceed in leg order;
			// EarlyCommit lets any held leg run immediately.
			commitable := s.prep(i) == len(legs)
			for k, m := range legs {
				bit := uint16(1) << uint(m)
				if s.hold(i)&bit == 0 || s.ran(i)&bit != 0 {
					continue
				}
				if !commitable && !mut.EarlyCommit {
					continue
				}
				if !mut.EarlyCommit && k > 0 {
					prev := uint16(1) << uint(legs[k-1])
					if s.ran(i)&prev == 0 {
						continue // fixed commit order keeps the space small
					}
				}
				ns := s
				ns.setHold(i, s.hold(i)&^bit)
				ns.setRan(i, s.ran(i)|bit)
				for j := 0; j < cc.n; j++ {
					if j != i && s.ran(j)&bit != 0 && cc.conflict[i][j]&bit != 0 {
						ns.order |= orderBit(j, i)
					}
				}
				if ns.ran(i) == cc.touch[i] {
					ns.setPhase(i, cDone)
				}
				out = append(out, csuccEdge{Step{"commit", i}, ns})
			}
			// Abort: hold expiry / cancellation before the commit point.
			if cc.cfg.AllowAbort && (s.ran(i) == 0 || mut.EarlyCommit) {
				ns := s
				ns.setPhase(i, cAborted)
				if !mut.LeakOnAbort {
					ns.setHold(i, 0)
				}
				out = append(out, csuccEdge{Step{"abort", i}, ns})
			}
		}
	}
	return out
}

// checkInvariants evaluates the cluster catalog on one state.
func (cc *ccompiled) checkInvariants(s cstate) (string, string) {
	// C1 — member isolation: no two conflicting holds coexist anywhere.
	for i := 0; i < cc.n; i++ {
		for j := i + 1; j < cc.n; j++ {
			if both := s.hold(i) & s.hold(j) & cc.conflict[i][j]; both != 0 {
				return "C1-member-isolation", fmt.Sprintf("%s and %s hold conflicting effects on member mask %04b",
					cc.cfg.opName(i), cc.cfg.opName(j), both)
			}
		}
	}
	// C2 — all-or-nothing: aborted rounds ran nothing; done rounds ran
	// every leg.
	for i := 0; i < cc.n; i++ {
		if s.phase(i) == cAborted && s.ran(i) != 0 {
			return "C2-all-or-nothing", fmt.Sprintf("%s aborted after running legs on member mask %04b — half-applied round",
				cc.cfg.opName(i), s.ran(i))
		}
		if s.phase(i) == cDone && s.ran(i) != cc.touch[i] {
			return "C2-all-or-nothing", fmt.Sprintf("%s finished with legs unrun (ran %04b of %04b)",
				cc.cfg.opName(i), s.ran(i), cc.touch[i])
		}
	}
	// C3 — serializability: no crossed pair (i before j on one member
	// and j before i on another).
	for i := 0; i < cc.n; i++ {
		for j := i + 1; j < cc.n; j++ {
			if s.order&orderBit(i, j) != 0 && s.order&orderBit(j, i) != 0 {
				return "C3-serializability", fmt.Sprintf("%s and %s ran in opposite orders on different members",
					cc.cfg.opName(i), cc.cfg.opName(j))
			}
		}
	}
	// C4 — release on terminal.
	for i := 0; i < cc.n; i++ {
		if p := s.phase(i); (p == cDone || p == cAborted) && s.hold(i) != 0 {
			return "C4-release-on-terminal", fmt.Sprintf("%s is terminal but still holds member mask %04b",
				cc.cfg.opName(i), s.hold(i))
		}
	}
	return "", ""
}

func (cc *ccompiled) nonTerminal(s cstate) int {
	for i := 0; i < cc.n; i++ {
		if p := s.phase(i); p != cDone && p != cAborted {
			return i
		}
	}
	return -1
}

func (cc *ccompiled) describe(s cstate) string {
	names := []string{"unsubmitted", "round", "done", "aborted"}
	out := ""
	for i := 0; i < cc.n; i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s(prep=%d,hold=%04b,ran=%04b)",
			cc.cfg.opName(i), names[s.phase(i)], s.prep(i), s.hold(i), s.ran(i))
	}
	return out
}

// ClusterExplore exhaustively enumerates the configuration's
// interleavings breadth-first, checking C1..C4 at every state; a stuck
// non-terminal state is a deadlock. The shared Result/CounterExample
// types keep the driver's reporting identical to the single-node model.
func ClusterExplore(cfg *ClusterConfig, opts ExploreOpts) (*Result, error) {
	cc, err := compileCluster(cfg)
	if err != nil {
		return nil, err
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 5_000_000
	}
	start := time.Now()

	type edge struct {
		parent cstate
		step   Step
	}
	var initial cstate
	parent := map[cstate]edge{initial: {}}
	queue := []cstate{initial}
	res := &Result{Config: cfg.Name, States: 1}

	trace := func(s cstate) []Step {
		var steps []Step
		for s != initial {
			e := parent[s]
			steps = append(steps, e.step)
			s = e.parent
		}
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		return steps
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]

		if inv, detail := cc.checkInvariants(s); inv != "" {
			res.Violation = &CounterExample{Invariant: inv, Detail: detail, Trace: trace(s)}
			res.Elapsed = time.Since(start)
			return res, nil
		}
		succ := cc.successors(s)
		if len(succ) == 0 {
			if i := cc.nonTerminal(s); i >= 0 {
				res.Violation = &CounterExample{
					Invariant: "deadlock",
					Detail: fmt.Sprintf("stuck state: %s has no enabled action (%s)",
						cc.cfg.opName(i), cc.describe(s)),
					Trace: trace(s),
				}
				res.Elapsed = time.Since(start)
				return res, nil
			}
			continue
		}
		for _, e := range succ {
			res.Transitions++
			if _, seen := parent[e.next]; seen {
				continue
			}
			parent[e.next] = edge{parent: s, step: e.step}
			queue = append(queue, e.next)
			res.States++
			if res.States > opts.MaxStates {
				res.Elapsed = time.Since(start)
				return res, fmt.Errorf("spec: %q exceeded %d states; shrink the configuration", cfg.Name, opts.MaxStates)
			}
		}
	}
	res.Complete = true
	res.Elapsed = time.Since(start)
	return res, nil
}

// ClusterPresets returns the cluster configurations CI explores: the
// acceptance world (two cross rounds, a scan, and per-member traffic
// with aborts) plus the single-lane corners.
func ClusterPresets() []*ClusterConfig {
	return []*ClusterConfig{
		{
			// Two disjoint-resource cross rounds and a member-local op:
			// rounds serialize on the coordinator, locals flow freely.
			Name:    "cross-pair",
			Members: 2,
			Ops: []ClusterOp{
				{Name: "X", Touch: []int{0, 1}, Res: []int{1, 1}},
				{Name: "Y", Touch: []int{0, 1}, Res: []int{2, 2}},
				{Name: "L", Touch: []int{0}, Res: []int{1}},
			},
		},
		{
			// A full-fleet scan racing conflicting single-member writes —
			// the workload the twe-load cluster battery drives.
			Name:       "scan-vs-puts",
			Members:    3,
			AllowAbort: true,
			Ops: []ClusterOp{
				{Name: "scan", Touch: []int{0, 1, 2}, Res: []int{ResAll, ResAll, ResAll}},
				{Name: "p0", Touch: []int{0}, Res: []int{1}},
				{Name: "p1", Touch: []int{1}, Res: []int{1}},
				{Name: "p2", Touch: []int{2}, Res: []int{1}},
			},
		},
		{
			// Two conflicting cross rounds with no abort escape: the
			// coordinator mutex (or, without it, ascending acquisition) is
			// all that stands between this and the classic hold-wait cycle.
			Name:    "cross-conflict",
			Members: 2,
			Ops: []ClusterOp{
				{Name: "X", Touch: []int{0, 1}, Res: []int{1, 1}},
				{Name: "Y", Touch: []int{0, 1}, Res: []int{1, 1}},
			},
		},
		{
			// The acceptance configuration: two overlapping cross rounds,
			// a scan, and a conflicting local, all abortable.
			Name:       "cross-full",
			Members:    2,
			AllowAbort: true,
			Ops: []ClusterOp{
				{Name: "X", Touch: []int{0, 1}, Res: []int{1, 1}},
				{Name: "scan", Touch: []int{0, 1}, Res: []int{ResAll, ResAll}},
				{Name: "L0", Touch: []int{0}, Res: []int{1}},
				{Name: "L1", Touch: []int{1}, Res: []int{1}},
			},
		},
	}
}

// ClusterPreset returns the named cluster preset, or nil.
func ClusterPreset(name string) *ClusterConfig {
	for _, c := range ClusterPresets() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClusterPresetNames lists the cluster preset names in order.
func ClusterPresetNames() []string {
	ps := ClusterPresets()
	names := make([]string, len(ps))
	for i, c := range ps {
		names[i] = c.Name
	}
	return names
}
