package schedfuzz

// ShrinkSpec greedily minimizes a failing spec: it tries structure-removing
// mutations (drop a task, drop an op, unwiden a summary, flatten a loop) and
// keeps any mutant for which failing still returns true, iterating to a
// fixpoint or until budget mutation attempts are spent. failing must be
// (sufficiently) deterministic — with schedule fuzzing the caller typically
// wraps RunSpec over all schedules so a flaky reproduction still counts.
func ShrinkSpec(spec *Spec, failing func(*Spec) bool, budget int) *Spec {
	cur := spec.Clone()
	attempt := func(mutate func(*Spec) bool) bool {
		if budget <= 0 {
			return false
		}
		cand := cur.Clone()
		if !mutate(cand) {
			return false // mutation not applicable; costs no budget
		}
		budget--
		if failing(cand) {
			cur = cand
			return true
		}
		return false
	}

	for changed := true; changed && budget > 0; {
		changed = false
		// Drop whole tasks, highest index first so children vanish before
		// their creators.
		for ti := len(cur.Tasks) - 1; ti >= 1; ti-- {
			i := ti
			if attempt(func(s *Spec) bool {
				if i >= len(s.Tasks) {
					return false
				}
				s.DropTask(i)
				return true
			}) {
				changed = true
			}
		}
		// Drop individual ops, last first.
		for ti := len(cur.Tasks) - 1; ti >= 0; ti-- {
			for j := len(cur.Tasks[ti].Ops) - 1; j >= 0; j-- {
				i, k := ti, j
				if attempt(func(s *Spec) bool {
					if i >= len(s.Tasks) || k >= len(s.Tasks[i].Ops) {
						return false
					}
					s.DropOp(i, k)
					return true
				}) {
					changed = true
				}
			}
		}
		// Simplify in place: remove widening, flatten loops.
		for ti := range cur.Tasks {
			i := ti
			if cur.Tasks[i].WidenSeed != 0 {
				if attempt(func(s *Spec) bool {
					s.Tasks[i].WidenSeed = 0
					return true
				}) {
					changed = true
				}
			}
			for j, op := range cur.Tasks[i].Ops {
				if op.Kind == OpLoopInc && op.Count > 1 {
					k := j
					if attempt(func(s *Spec) bool {
						s.Tasks[i].Ops[k].Count = 1
						return true
					}) {
						changed = true
					}
				}
			}
		}
	}
	return cur
}

// Shrink minimizes a spec whose RunSpec reported failures, using RunSpec
// itself as the failing predicate. Budget bounds the number of differential
// re-runs; shrinking a schedule-sensitive failure re-tests all schedules, so
// a modest budget (tens) already costs many executions.
func Shrink(spec *Spec, cfg Config, budget int) *Spec {
	return ShrinkSpec(spec, func(s *Spec) bool {
		return len(RunSpec(s, cfg)) > 0
	}, budget)
}
