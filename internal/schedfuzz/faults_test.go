package schedfuzz

import (
	"reflect"
	"testing"
)

// TestWithFaultsDeterministic: the same seed must mark the same tasks with
// the same fault kinds — replayability is the whole point.
func TestWithFaultsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a := WithFaults(Generate(seed), seed)
		b := WithFaults(Generate(seed), seed)
		ka := make([]FaultKind, len(a.Tasks))
		kb := make([]FaultKind, len(b.Tasks))
		for i := range a.Tasks {
			ka[i], kb[i] = a.Tasks[i].Fault, b.Tasks[i].Fault
		}
		if !reflect.DeepEqual(ka, kb) {
			t.Fatalf("seed %d: fault marking not deterministic: %v vs %v", seed, ka, kb)
		}
	}
}

// TestWithFaultsMarksLaunchTargetsOnly: a faulted spawn or call target
// would fail its parent, so eligibility is restricted to tasks created
// exclusively by launches.
func TestWithFaultsMarksLaunchTargetsOnly(t *testing.T) {
	marked := 0
	for seed := int64(0); seed < 50; seed++ {
		spec := WithFaults(Generate(seed), seed)
		for _, ti := range spec.Faulted() {
			marked++
			for _, task := range spec.Tasks {
				for _, op := range task.Ops {
					if op.createsChild() && op.Child == ti && op.Kind != OpLaunch {
						t.Fatalf("seed %d: task %d faulted but created by %v", seed, ti, op.Kind)
					}
				}
			}
		}
	}
	if marked == 0 {
		t.Fatal("no task faulted across 50 seeds — WithFaults is inert")
	}
}

// TestExpectedStoreSkipsFaulted: a faulted task and its would-be children
// contribute nothing to the analytic expectation.
func TestExpectedStoreSkipsFaulted(t *testing.T) {
	spec := &Spec{
		Regions: []string{"R"},
		Vars:    []VarSpec{{Name: "v0", Path: []string{"R"}}},
		Tasks: []*TaskSpec{
			{Name: "main", Kind: TaskDriver, Ops: []*Op{
				{Kind: OpLaunch, Child: 1, Fut: "f0"},
				{Kind: OpWait, Fut: "f0"},
				{Kind: OpLaunch, Child: 2, Fut: "f1"},
				{Kind: OpWait, Fut: "f1"},
			}},
			{Name: "ok", Kind: TaskCompute, HasParam: true, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 5},
			}},
			{Name: "bad", Kind: TaskCompute, HasParam: true, Fault: FaultPanic, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 100},
			}},
		},
	}
	st := spec.ExpectedStore()
	if st.Globals["v0"] != 5 {
		t.Fatalf("v0 = %d, want 5 (faulted increment must be skipped)", st.Globals["v0"])
	}
}

// TestFaultDifferentialPinnedSeeds is the tentpole differential check:
// pinned seeds, faults injected, both schedulers, unperturbed plus one
// perturbed schedule — surviving-store equality, isolation, fault
// outcomes, and quiescence all asserted inside RunSpecFaults.
func TestFaultDifferentialPinnedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Schedules: 1}
	for seed := int64(0); seed < 40; seed++ {
		spec := WithFaults(Generate(seed), seed)
		if fails := RunSpecFaults(spec, cfg); len(fails) > 0 {
			t.Fatalf("seed %d (faulted %v): %v", seed, spec.Faulted(), fails[0])
		}
	}
}

// TestFaultOutcomeClasses pins one task of each fault kind in a
// hand-written spec and checks the run reports no failures — the
// executor's outcome checker asserts each future's error class.
func TestFaultOutcomeClasses(t *testing.T) {
	spec := &Spec{
		Seed:    7,
		Regions: []string{"R"},
		Vars: []VarSpec{
			{Name: "v0", Path: []string{"R"}},
		},
		Tasks: []*TaskSpec{
			{Name: "main", Kind: TaskDriver, Ops: []*Op{
				{Kind: OpLaunch, Child: 1, Fut: "f1"},
				{Kind: OpLaunch, Child: 2, Fut: "f2"},
				{Kind: OpLaunch, Child: 3, Fut: "f3"},
				{Kind: OpLaunch, Child: 4, Fut: "f4"},
				{Kind: OpWait, Fut: "f1"},
				{Kind: OpWait, Fut: "f2"},
				{Kind: OpWait, Fut: "f3"},
				{Kind: OpWait, Fut: "f4"},
			}},
			{Name: "panics", Kind: TaskCompute, HasParam: true, Fault: FaultPanic, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
			{Name: "cancelled", Kind: TaskCompute, HasParam: true, Fault: FaultCancel, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
			{Name: "deadlined", Kind: TaskCompute, HasParam: true, Fault: FaultDeadline, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
			{Name: "survivor", Kind: TaskCompute, HasParam: true, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 3},
			}},
		},
	}
	if fails := RunSpecFaults(spec, Config{Schedules: 1}); len(fails) > 0 {
		t.Fatalf("hand-written fault spec failed: %v", fails[0])
	}
	if st := spec.ExpectedStore(); st.Globals["v0"] != 3 {
		t.Fatalf("expected store v0 = %d, want 3", st.Globals["v0"])
	}
}
