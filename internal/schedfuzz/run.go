package schedfuzz

import (
	"fmt"
	"strings"
	"time"

	"twe/internal/core"
	"twe/internal/isolcheck"
	"twe/internal/lang"
	"twe/internal/sched"
	"twe/internal/semantics"
)

// Config parameterizes a fuzz run.
type Config struct {
	// Schedules is the number of perturbed schedules per program per
	// scheduler, in addition to the unperturbed schedule 0.
	Schedules int
	// Parallelism is the worker count of each runtime (default 4).
	Parallelism int
	// Timeout bounds one runtime execution; exceeding it is reported as a
	// suspected deadlock/livelock (default 30s — generated programs finish
	// in milliseconds, so a stuck run is a real finding, not noise).
	Timeout time.Duration
	// MaxSteps bounds the semantics interpreter (default 2_000_000).
	MaxSteps int
	// Refine additionally records an event log on every runtime execution
	// and replays it against the executable admission model
	// (spec.Refine); a history the model rejects is a Refinement failure.
	Refine bool

	// Replay filters, set via Replay: restrict the sweep to one scheduler
	// ("" = all) and one schedule index (-1 = all).
	filtered      bool
	onlyScheduler string
	onlySchedule  int
}

func (c Config) withDefaults() Config {
	if !c.filtered {
		c.onlyScheduler, c.onlySchedule = "", -1
	}
	if c.Schedules <= 0 {
		c.Schedules = 3
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 2_000_000
	}
	return c
}

// FailKind classifies a divergence.
type FailKind string

// Failure kinds, ordered roughly by the layer that misbehaved.
const (
	// GeneratorInvalid: the generated program failed the static checker —
	// a schedfuzz bug, not a scheduler bug.
	GeneratorInvalid FailKind = "generator-invalid"
	// InterpStuck: the formal-semantics interpreter did not quiesce.
	InterpStuck FailKind = "interp-stuck"
	// InterpViolation: the interpreter's own isolation oracle fired.
	InterpViolation FailKind = "interp-violation"
	// InterpStoreMismatch: interpreter store differs from the analytic
	// expectation.
	InterpStoreMismatch FailKind = "interp-store-mismatch"
	// RuntimeError: a runtime execution returned an error.
	RuntimeError FailKind = "runtime-error"
	// Deadlock: a runtime execution exceeded the timeout.
	Deadlock FailKind = "deadlock"
	// Isolation: the isolcheck oracle observed two interfering tasks
	// running concurrently under a real scheduler.
	Isolation FailKind = "isolation"
	// StoreMismatch: a real scheduler produced a different final store.
	StoreMismatch FailKind = "store-mismatch"
	// Refinement: the run's event log is not a behavior of the executable
	// admission model (Config.Refine runs only).
	Refinement FailKind = "refinement"
)

// Failure is one divergence, replayable from (Seed, Schedule, Scheduler).
type Failure struct {
	Seed      int64
	Schedule  int
	Scheduler string // "naive", "tree", "interp", or "gen"
	Kind      FailKind
	Detail    string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("seed=%d schedule=%d scheduler=%s kind=%s: %s",
		f.Seed, f.Schedule, f.Scheduler, f.Kind, f.Detail)
}

// schedulerNames are the runtime schedulers under differential test: the
// baseline, the tree, and the tree's lock-free admission configuration
// (the latter so the §17 fast/slow boundary is differentially checked
// against both locked implementations on every seed).
var schedulerNames = []string{"naive", "tree", "tree-lockfree"}

// Schedulers returns the names in the differential set, for harness
// front-ends validating a -sched replay filter.
func Schedulers() []string {
	out := make([]string, len(schedulerNames))
	copy(out, schedulerNames)
	return out
}

// pendingCount lets the harness report how many tasks were still waiting
// when a run timed out; all schedulers implement it.
type pendingCount interface{ Pending() int }

// newScheduler builds a fresh scheduler instance via the sched registry.
func newScheduler(name string) core.Scheduler {
	s, err := sched.New(sched.Config{Name: name})
	if err != nil {
		panic("schedfuzz: " + err.Error())
	}
	return s
}

// runOnRuntime executes the program's main task on a fresh runtime with the
// named scheduler and the (seed, schedule) yielder, returning the final
// store. The run is bounded by cfg.Timeout: on expiry the runtime is left
// running (its goroutines park forever on a real deadlock) and a Deadlock
// failure with pending-queue diagnostics is returned instead of a store.
func runOnRuntime(prog *lang.Program, name string, seed int64, schedule int, cfg Config) (Store, *Failure) {
	sched := newScheduler(name)
	chk := isolcheck.New()
	opts := []core.Option{core.WithMonitor(chk)}
	if schedule != 0 {
		opts = append(opts, core.WithYield(Yielder(seed, schedule)))
	}
	tr := refineTracer(cfg)
	opts = withRefineTracer(opts, tr)
	rt := core.NewRuntime(sched, cfg.Parallelism, opts...)

	fail := func(kind FailKind, format string, args ...any) *Failure {
		return &Failure{Seed: seed, Schedule: schedule, Scheduler: name,
			Kind: kind, Detail: fmt.Sprintf(format, args...)}
	}

	c, err := lang.Compile(prog, rt)
	if err != nil {
		return Store{}, fail(RuntimeError, "compile: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		err := c.Run("main")
		rt.Shutdown() // drain fire-and-forget launches before snapshotting
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			return Store{}, fail(RuntimeError, "run: %v", err)
		}
	case <-time.After(cfg.Timeout):
		detail := fmt.Sprintf("no quiescence after %v", cfg.Timeout)
		if pc, ok := sched.(pendingCount); ok {
			detail += fmt.Sprintf("; %d task(s) still pending in scheduler queue", pc.Pending())
		}
		return Store{}, fail(Deadlock, "%s", detail)
	}

	if vs := chk.Violations(); len(vs) > 0 {
		msgs := make([]string, 0, len(vs))
		for _, v := range vs {
			msgs = append(msgs, v.String())
		}
		return Store{}, fail(Isolation, "%d violation(s): %s", len(vs), strings.Join(msgs, "; "))
	}
	if f := refineCheck(tr, seed, schedule, name); f != nil {
		return Store{}, f
	}
	return Store{Globals: c.Globals(), Arrays: c.Arrays()}, nil
}

// RunSpec runs one spec differentially: the analytic expected store, the
// formal-semantics interpreter (ground truth), and each real scheduler
// across the unperturbed schedule plus cfg.Schedules perturbed ones. It
// returns every divergence found (empty slice = the spec passed).
func RunSpec(spec *Spec, cfg Config) []*Failure {
	cfg = cfg.withDefaults()
	seed := spec.Seed

	prog, err := Render(spec)
	if err != nil {
		return []*Failure{{Seed: seed, Scheduler: "gen", Kind: GeneratorInvalid, Detail: err.Error()}}
	}
	expected := spec.ExpectedStore()

	// Ground truth: the small-step interpreter under a seed-derived random
	// schedule. Its store must match the analytic expectation exactly.
	out, err := semantics.Execute(prog, "main", seed, cfg.MaxSteps)
	if err != nil {
		return []*Failure{{Seed: seed, Scheduler: "interp", Kind: RuntimeError, Detail: err.Error()}}
	}
	if len(out.Violations) > 0 {
		return []*Failure{{Seed: seed, Scheduler: "interp", Kind: InterpViolation,
			Detail: fmt.Sprintf("%v", out.Violations)}}
	}
	if !out.Quiesced {
		return []*Failure{{Seed: seed, Scheduler: "interp", Kind: InterpStuck,
			Detail: fmt.Sprintf("no quiescence within %d steps", cfg.MaxSteps)}}
	}
	interpStore := Store{Globals: out.Globals, Arrays: out.Arrays}
	if !interpStore.Equal(expected) {
		return []*Failure{{Seed: seed, Scheduler: "interp", Kind: InterpStoreMismatch,
			Detail: DiffStores("expected", expected, "interp", interpStore)}}
	}

	var fails []*Failure
	for _, name := range schedulerNames {
		if cfg.onlyScheduler != "" && name != cfg.onlyScheduler {
			continue
		}
		for schedule := 0; schedule <= cfg.Schedules; schedule++ {
			if cfg.onlySchedule >= 0 && schedule != cfg.onlySchedule {
				continue
			}
			st, fail := runOnRuntime(prog, name, seed, schedule, cfg)
			if fail != nil {
				fails = append(fails, fail)
				continue
			}
			if !st.Equal(expected) {
				fails = append(fails, &Failure{Seed: seed, Schedule: schedule, Scheduler: name,
					Kind: StoreMismatch, Detail: DiffStores("expected", expected, name, st)})
			}
		}
	}
	return fails
}

// Replay deterministically re-runs the program of one seed, optionally
// restricted to a single scheduler ("naive"/"tree", "" = both) and a single
// schedule index (negative = 0..cfg.Schedules). The interpreter ground
// truth always runs. This is the engine behind `twe-fuzz -seed N
// -schedule M`.
func Replay(seed int64, scheduler string, schedule int, cfg Config) []*Failure {
	cfg.filtered = true
	cfg.onlyScheduler = scheduler
	cfg.onlySchedule = schedule
	if schedule > cfg.Schedules {
		cfg.Schedules = schedule
	}
	return RunSpec(Generate(seed), cfg)
}

// FuzzOne generates and differentially runs the program for one seed.
func FuzzOne(seed int64, cfg Config) []*Failure {
	return RunSpec(Generate(seed), cfg)
}

// Report summarizes a fuzz campaign.
type Report struct {
	Programs  int
	Failures  []*Failure
	Instances int // total task instances across all generated programs
	// BatchGroups counts SubmitBatch groups of size >= 2 flushed during a
	// batched campaign (FuzzBatch); zero in the other modes.
	BatchGroups int64
}

// Fuzz runs seeds [start, start+n) and collects all failures. progress, if
// non-nil, is invoked after each seed.
func Fuzz(start int64, n int, cfg Config, progress func(seed int64, fails []*Failure)) *Report {
	rep := &Report{}
	for i := 0; i < n; i++ {
		seed := start + int64(i)
		spec := Generate(seed)
		rep.Programs++
		rep.Instances += spec.Instances()
		fails := RunSpec(spec, cfg)
		rep.Failures = append(rep.Failures, fails...)
		if progress != nil {
			progress(seed, fails)
		}
	}
	return rep
}
