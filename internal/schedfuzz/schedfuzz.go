// Package schedfuzz is a deterministic schedule-fuzzing and
// differential-replay harness for the TWE schedulers.
//
// One fuzz iteration, from a single int64 seed:
//
//  1. Generate derives a Spec — a random task DAG over a small RPL region
//     universe, with disjoint, conflicting, and nested effects, wildcard
//     (widened) summaries, executeLater/getValue chains, spawn/join trees,
//     inline calls, and dynamic-effect reference ops.
//  2. Render lowers the Spec to a TWEL program whose effect summaries are
//     inferred from the bodies (then optionally widened) and verifies it
//     with the static checker.
//  3. RunSpec executes the program differentially:
//     an analytic expected store folded directly from the Spec;
//     the formal-semantics interpreter (internal/semantics) as ground
//     truth; and the naive and tree schedulers on the real runtime, each
//     across several perturbed schedules (core.WithYield + Yielder), all
//     under the isolcheck isolation oracle.
//     Results, final stores, and oracle verdicts must agree; any
//     divergence becomes a Failure replayable from (seed, schedule,
//     scheduler).
//  4. ShrinkSpec greedily minimizes a failing Spec while the failure
//     reproduces.
//
// # Why the outcomes are exactly comparable
//
// TWE programs are nondeterministic in general (task interleaving is
// unspecified), which would make differential store comparison meaningless.
// The generator therefore emits programs that are deterministic by
// construction: every shared-state write is a commutative constant
// increment rendered as a single statement, and task isolation makes each
// statement atomic with respect to interfering tasks, so the final store is
// the same under every legal schedule — and computable analytically from
// the Spec. Any observed difference is a real scheduler bug (lost update,
// isolation breach, premature result) rather than benign nondeterminism.
//
// # Why generated programs cannot deadlock
//
// A deadlock would be schedule-dependent and so would also break the
// differential comparison; the generator rules it out structurally.
// Tasks are split into drivers and compute tasks. Drivers (main and drv*)
// executeLater other drivers, regular compute tasks, and at most their own
// private "probe" compute task, and block in getValue — but their effect
// summaries cover only private per-driver locations, so nothing a driver
// holds while blocked can be demanded by an unrelated task, except its own
// probe, which the §3.1.4 blocked-on effect-transfer rule admits. Compute
// tasks (cmp*, prb*) touch shared state and spawn/join or inline-call only
// higher-index compute tasks; they never executeLater or getValue, so they
// never block while holding contested effects (a joined spawn child either
// runs under the transfer rules or is already running). Wait edges thus
// point strictly down the task-index order, conflict edges only ever wait
// on tasks that terminate, and no mixed wait/conflict cycle can form.
//
// The harness still exercises the interesting machinery: conflicting and
// nested effects among compute tasks, wildcard summaries via widening,
// effect transfer when blocked via probes, spawn/join covering-effect
// transfer, and prioritized bypass of waiting tasks.
package schedfuzz
