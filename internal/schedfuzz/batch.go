// Batch-admission mode for the schedule fuzzer (DESIGN.md §12): the same
// generated task DAGs, but with driver launches entering the runtime
// through Ctx.SubmitBatch groups instead of one ExecuteLater per task.
// Group boundaries are chosen deterministically from the seed —
// independent of the schedule and the scheduler — so the naive and tree
// schedulers receive byte-identical batch sequences and the differential
// oracle applies unchanged:
//
//   - the final store must equal the analytic expectation (batched
//     admission must not lose, duplicate, or reorder a conflicting task's
//     effects);
//   - the isolation oracle observes no violation — in particular, two
//     interfering members of one batch must never run concurrently;
//   - the scheduler quiesces (a batched insert leaks no bookkeeping).
//
// Like fault mode, batch mode executes specs directly on the core runtime
// (TWEL has no batch construct); the store is plain unsynchronized ints,
// so -race doubles as an isolation proof for the batched admission path.
package schedfuzz

import (
	"fmt"
	"math/rand"
	"time"

	"twe/internal/core"
	"twe/internal/isolcheck"
)

// batchFlushProb is the denominator of the per-launch flush coin: after
// each buffered launch the buffer flushes with probability 1/batchFlushProb,
// producing a seed-derived mix of singleton and multi-task groups.
const batchFlushProb = 3

// launchBuf accumulates one task body's buffered launches and flushes
// them as a SubmitBatch group. It is confined to the interpreting
// goroutine; only the flushed-groups tally crosses into the shared exec.
type launchBuf struct {
	e    *faultExec
	ctx  *core.Ctx
	rnd  *rand.Rand
	futs map[string]*core.Future
	ops  []*Op
	args []int
}

func newLaunchBuf(e *faultExec, ctx *core.Ctx, ti, p int, futs map[string]*core.Future) *launchBuf {
	// The boundary stream depends only on (seed, task, param): the same
	// spec instance produces the same groups under every scheduler and
	// every perturbed schedule, which is what makes the runs comparable.
	src := e.batchSeed ^ int64(ti)*0x9e3779b9 ^ int64(p)*0x85ebca77 ^ 0xba7c4
	return &launchBuf{e: e, ctx: ctx, rnd: rand.New(rand.NewSource(src)), futs: futs}
}

// add buffers one launch and flips the seed-derived coin for an early
// group boundary.
func (lb *launchBuf) add(op *Op, arg int) error {
	lb.ops = append(lb.ops, op)
	lb.args = append(lb.args, arg)
	if lb.rnd.Intn(batchFlushProb) == 0 {
		return lb.flush()
	}
	return nil
}

// flush submits the buffered launches as one group and registers their
// futures under the names later waits look up.
func (lb *launchBuf) flush() error {
	if len(lb.ops) == 0 {
		return nil
	}
	subs := make([]core.Submission, len(lb.ops))
	for i, op := range lb.ops {
		subs[i] = core.Submission{Task: lb.e.tasks[op.Child], Arg: lb.args[i]}
	}
	fs, err := lb.ctx.SubmitBatch(subs)
	if err != nil {
		return err
	}
	for i, op := range lb.ops {
		if op.Fut != "" {
			lb.futs[op.Fut] = fs[i]
		}
	}
	if len(lb.ops) >= 2 {
		lb.e.mu.Lock()
		lb.e.groups++
		lb.e.mu.Unlock()
	}
	lb.ops, lb.args = lb.ops[:0], lb.args[:0]
	return nil
}

// runBatchOnRuntime executes the spec with batched launches on a fresh
// runtime with the named scheduler and (seed, schedule) yielder. It
// returns the final store and the number of multi-task groups flushed.
func runBatchOnRuntime(spec *Spec, name string, seed int64, schedule int, cfg Config) (Store, int64, *Failure) {
	sched := newScheduler(name)
	chk := isolcheck.New()
	opts := []core.Option{core.WithMonitor(chk)}
	if schedule != 0 {
		opts = append(opts, core.WithYield(Yielder(seed, schedule)))
	}
	tr := refineTracer(cfg)
	opts = withRefineTracer(opts, tr)
	rt := core.NewRuntime(sched, cfg.Parallelism, opts...)
	e := newFaultExec(spec, rt)
	e.batch, e.batchSeed = true, seed

	fail := func(kind FailKind, format string, args ...any) *Failure {
		return &Failure{Seed: seed, Schedule: schedule, Scheduler: name,
			Kind: kind, Detail: fmt.Sprintf(format, args...)}
	}

	done := make(chan error, 1)
	go func() {
		_, err := rt.Execute(e.tasks[0], 0)
		rt.Shutdown() // drain fire-and-forget launches before snapshotting
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			return Store{}, 0, fail(RuntimeError, "run: %v", err)
		}
	case <-time.After(cfg.Timeout):
		detail := fmt.Sprintf("no quiescence after %v", cfg.Timeout)
		if pc, ok := sched.(pendingCount); ok {
			detail += fmt.Sprintf("; %d task(s) still pending in scheduler queue", pc.Pending())
		}
		return Store{}, 0, fail(Deadlock, "%s", detail)
	}

	if vs := chk.Violations(); len(vs) > 0 {
		return Store{}, 0, fail(Isolation, "%d violation(s) under batched admission: %v", len(vs), vs)
	}
	if !rt.Quiesced() {
		return Store{}, 0, fail(NotQuiesced, "scheduler retained bookkeeping after batched run")
	}
	if f := refineCheck(tr, seed, schedule, name); f != nil {
		return Store{}, 0, f
	}
	return e.store(), e.groups, nil
}

// RunSpecBatch runs one spec with batched launches differentially across
// both schedulers and cfg.Schedules perturbed schedules, comparing every
// final store against the analytic expectation. It also returns the total
// multi-task groups flushed, so campaigns can prove batching actually
// exercised the grouped path.
func RunSpecBatch(spec *Spec, cfg Config) ([]*Failure, int64) {
	cfg = cfg.withDefaults()
	expected := spec.ExpectedStore()
	var fails []*Failure
	var groups int64
	for _, name := range schedulerNames {
		if cfg.onlyScheduler != "" && name != cfg.onlyScheduler {
			continue
		}
		for schedule := 0; schedule <= cfg.Schedules; schedule++ {
			if cfg.onlySchedule >= 0 && schedule != cfg.onlySchedule {
				continue
			}
			st, g, fail := runBatchOnRuntime(spec, name, spec.Seed, schedule, cfg)
			if fail != nil {
				fails = append(fails, fail)
				continue
			}
			groups += g
			if !st.Equal(expected) {
				fails = append(fails, &Failure{Seed: spec.Seed, Schedule: schedule, Scheduler: name,
					Kind: StoreMismatch, Detail: "under batched admission: " + DiffStores("expected", expected, name, st)})
			}
		}
	}
	return fails, groups
}

// FuzzOneBatch generates the program for one seed and runs it with
// batched admission.
func FuzzOneBatch(seed int64, cfg Config) []*Failure {
	fails, _ := RunSpecBatch(Generate(seed), cfg)
	return fails
}

// ReplayBatch re-runs one seed in batch mode, optionally restricted to a
// single scheduler ("naive"/"tree", "" = both) and a single schedule index
// (negative = 0..cfg.Schedules). This is the engine behind
// `twe-fuzz -batch -seed N -schedule M`.
func ReplayBatch(seed int64, scheduler string, schedule int, cfg Config) []*Failure {
	cfg.filtered = true
	cfg.onlyScheduler = scheduler
	cfg.onlySchedule = schedule
	if schedule > cfg.Schedules {
		cfg.Schedules = schedule
	}
	return FuzzOneBatch(seed, cfg)
}

// FuzzBatch runs a batched-admission campaign over seeds [start, start+n).
func FuzzBatch(start int64, n int, cfg Config, progress func(seed int64, fails []*Failure)) *Report {
	rep := &Report{}
	for i := 0; i < n; i++ {
		seed := start + int64(i)
		spec := Generate(seed)
		rep.Programs++
		rep.Instances += spec.Instances()
		fails, groups := RunSpecBatch(spec, cfg)
		rep.BatchGroups += groups
		rep.Failures = append(rep.Failures, fails...)
		if progress != nil {
			progress(seed, fails)
		}
	}
	return rep
}
