// Fault-injection mode for the schedule fuzzer (DESIGN.md §10): the same
// generated task DAGs, but with a seed-chosen subset of launched tasks
// replaced by deterministic failure stubs — panicking bodies, tasks
// cancelled at their launch site, and tasks launched with an already-tight
// deadline. The differential oracle then checks that under every
// scheduler and perturbed schedule:
//
//   - the surviving tasks produce exactly the analytic expected store
//     (faulted tasks contribute nothing — no partial effects leak);
//   - the isolation oracle observes no violation;
//   - every faulted future reports the right failure class; and
//   - the scheduler quiesces (no leaked queue entries or effects).
//
// Faulted programs cannot be rendered to TWEL (the language has no
// cancellation), so this mode executes specs directly on the core runtime
// with the spec's conservative effect summaries. The store is plain Go
// ints written without synchronization: under -race this doubles as a
// proof that isolation holds across injected failures.
package schedfuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"twe/internal/core"
	"twe/internal/isolcheck"
)

// FaultKind classifies the failure stub injected into a task.
type FaultKind uint8

const (
	// FaultNone: the task runs its ordinary body.
	FaultNone FaultKind = iota
	// FaultPanic: the body panics immediately; the future must report a
	// contained *core.PanicError.
	FaultPanic
	// FaultCancel: the launch site cancels the future right after
	// submission; the body (if it ever starts) spins until it observes the
	// cancellation. The future must report core.ErrCancelled.
	FaultCancel
	// FaultDeadline: the task is launched with a deadline that expires
	// almost immediately; the body spins until cancelled. The future must
	// report core.ErrDeadlineExceeded.
	FaultDeadline
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultCancel:
		return "cancel"
	case FaultDeadline:
		return "deadline"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault-mode failure kinds, extending the FailKind taxonomy in run.go.
const (
	// FaultOutcome: a faulted future finished with the wrong error class.
	FaultOutcome FailKind = "fault-outcome"
	// NotQuiesced: the scheduler retained task or effect bookkeeping after
	// the run — some exit path leaked.
	NotQuiesced FailKind = "not-quiesced"
)

// faultDeadline is the deadline given to FaultDeadline tasks: long enough
// to outlive submission, far too short for a loaded queue.
const faultDeadline = 2 * time.Millisecond

// WithFaults clones the spec and marks a seed-chosen subset of its tasks
// as faulted. Only tasks whose every creation site is a launch are
// eligible: a faulted spawn or call target would fail its parent too,
// making the expected store depend on fault timing. At least one eligible
// task is always faulted (when any exists), so a fault campaign never
// silently degenerates to the plain differential mode.
func WithFaults(spec *Spec, seed int64) *Spec {
	out := spec.Clone()
	rnd := rand.New(rand.NewSource(seed ^ 0x5eedfa17))
	var eligible []int
	for ti := 1; ti < len(out.Tasks); ti++ {
		launchedOnly, created := true, false
		for _, t := range out.Tasks {
			for _, op := range t.Ops {
				if op.createsChild() && op.Child == ti {
					created = true
					if op.Kind != OpLaunch {
						launchedOnly = false
					}
				}
			}
		}
		if created && launchedOnly {
			eligible = append(eligible, ti)
		}
	}
	kinds := []FaultKind{FaultPanic, FaultCancel, FaultDeadline}
	marked := 0
	for _, ti := range eligible {
		if rnd.Intn(3) == 0 {
			out.Tasks[ti].Fault = kinds[rnd.Intn(len(kinds))]
			marked++
		}
	}
	if marked == 0 && len(eligible) > 0 {
		ti := eligible[rnd.Intn(len(eligible))]
		out.Tasks[ti].Fault = kinds[rnd.Intn(len(kinds))]
	}
	return out
}

// Faulted returns the indices of fault-injected tasks.
func (s *Spec) Faulted() []int {
	var out []int
	for i, t := range s.Tasks {
		if t.Fault != FaultNone {
			out = append(out, i)
		}
	}
	return out
}

// faultExec executes a (possibly faulted) spec directly on a core runtime.
// Batch mode (batch.go) reuses it with batching enabled: launches buffer
// into SubmitBatch groups instead of submitting one by one.
type faultExec struct {
	spec  *Spec
	rt    *core.Runtime
	tasks []*core.Task

	// batch enables launch buffering (batch.go); batchSeed derives the
	// deterministic, schedule-independent flush boundaries.
	batch     bool
	batchSeed int64

	// The store: plain unsynchronized ints — the schedulers' isolation is
	// the only thing keeping -race quiet.
	globals map[string]*int
	arrays  map[string][]int

	mu      sync.Mutex
	faulted []faultedFut
	groups  int64 // batch mode: SubmitBatch groups of size >= 2 flushed
}

type faultedFut struct {
	fut  *core.Future
	kind FaultKind
	name string
}

func newFaultExec(spec *Spec, rt *core.Runtime) *faultExec {
	e := &faultExec{
		spec:    spec,
		rt:      rt,
		globals: map[string]*int{},
		arrays:  map[string][]int{},
	}
	for _, v := range spec.Vars {
		e.globals[v.Name] = new(int)
	}
	for _, a := range spec.Arrays {
		e.arrays[a.Name] = make([]int, a.Size)
	}
	effs := spec.ConsEffects()
	e.tasks = make([]*core.Task, len(spec.Tasks))
	for ti := range spec.Tasks {
		ti := ti
		t := core.NewTask(spec.Tasks[ti].Name, effs[ti], e.body(ti))
		t.Deterministic = spec.Tasks[ti].Deterministic
		e.tasks[ti] = t
	}
	return e
}

// body builds the task body: the fault stub for faulted tasks, the op
// interpreter otherwise.
func (e *faultExec) body(ti int) core.Body {
	t := e.spec.Tasks[ti]
	switch t.Fault {
	case FaultPanic:
		return func(*core.Ctx, any) (any, error) {
			panic(fmt.Sprintf("schedfuzz: injected panic in %s", t.Name))
		}
	case FaultCancel, FaultDeadline:
		return func(ctx *core.Ctx, _ any) (any, error) {
			// Spin until the (already issued or already armed) cancellation
			// arrives; bail out after a generous bound so a lost cancel is a
			// reported failure, not a hung fuzzer.
			bail := time.Now().Add(10 * time.Second)
			for ctx.Err() == nil {
				if time.Now().After(bail) {
					return nil, fmt.Errorf("schedfuzz: cancellation never reached %s", t.Name)
				}
				runtime.Gosched()
			}
			return nil, ctx.Err()
		}
	}
	return func(ctx *core.Ctx, arg any) (any, error) {
		p, _ := arg.(int)
		return nil, e.interpret(ctx, ti, p)
	}
}

// interpret runs task ti's ops with parameter p inside ctx. OpCall
// recurses inline (same ctx), mirroring the TWEL executor. In batch mode
// plain launches buffer into lb and enter the runtime as SubmitBatch
// groups; the buffer flushes at seed-chosen boundaries, before any wait
// that references a still-buffered future, and at body end, so every
// launch is submitted and waits never see a missing future.
func (e *faultExec) interpret(ctx *core.Ctx, ti, p int) error {
	futs := map[string]*core.Future{}
	spawns := map[string]*core.SpawnedFuture{}
	var lb *launchBuf
	if e.batch {
		lb = newLaunchBuf(e, ctx, ti, p, futs)
	}
	for _, op := range e.spec.Tasks[ti].Ops {
		amount := op.Amount
		if op.AmountFromParam {
			amount = p
		}
		childArg := op.Arg
		if op.ArgFromParam {
			childArg = p
		}
		switch op.Kind {
		case OpInc:
			e.applyInc(op, p, amount)
		case OpLoopInc:
			for i := 0; i < op.Count; i++ {
				e.applyInc(op, p, amount)
			}
		case OpCondInc:
			if p < op.CondK {
				e.applyInc(op, p, amount)
			}
		case OpRead:
			_ = e.read(op, p)
		case OpLaunch:
			child := e.spec.Tasks[op.Child]
			if lb != nil && child.Fault == FaultNone {
				if err := lb.add(op, childArg); err != nil {
					return err
				}
				continue
			}
			var f *core.Future
			var err error
			if child.Fault == FaultDeadline {
				f, err = ctx.Submit(e.tasks[op.Child],
					core.WithArg(childArg), core.WithDeadline(faultDeadline))
			} else {
				f, err = ctx.ExecuteLater(e.tasks[op.Child], childArg)
			}
			if err != nil {
				return err
			}
			if child.Fault == FaultCancel {
				f.Cancel(nil)
			}
			if child.Fault != FaultNone {
				e.mu.Lock()
				e.faulted = append(e.faulted, faultedFut{f, child.Fault, child.Name})
				e.mu.Unlock()
			}
			if op.Fut != "" {
				futs[op.Fut] = f
			}
		case OpWait:
			if lb != nil && futs[op.Fut] == nil {
				if err := lb.flush(); err != nil {
					return err
				}
			}
			f := futs[op.Fut]
			if f == nil {
				continue
			}
			if _, err := ctx.GetValue(f); err != nil && !isFaultErr(err) {
				return err
			}
		case OpSpawn:
			sf, err := ctx.Spawn(e.tasks[op.Child], childArg)
			if err != nil {
				return err
			}
			if op.Fut != "" {
				spawns[op.Fut] = sf
			}
		case OpJoin:
			sf := spawns[op.Fut]
			if sf == nil {
				continue
			}
			if _, err := ctx.Join(sf); err != nil && !errors.Is(err, core.ErrAlreadyJoined) {
				return err
			}
		case OpCall:
			if err := e.interpret(ctx, op.Child, childArg); err != nil {
				return err
			}
		case OpRefUse:
			// Dynamic-effect declaration: a no-op at run time, as in TWEL.
		}
	}
	if lb != nil {
		return lb.flush()
	}
	return nil
}

// isFaultErr reports whether err is one of the deterministic failure
// classes injected by this mode; waits tolerate exactly these.
func isFaultErr(err error) bool {
	var pe *core.PanicError
	return errors.Is(err, core.ErrCancelled) ||
		errors.Is(err, core.ErrDeadlineExceeded) ||
		errors.As(err, &pe)
}

func (e *faultExec) applyInc(op *Op, p, amount int) {
	if op.Loc.IsArray {
		e.arrays[op.Loc.Name][e.idx(op, p)] += amount
	} else {
		*e.globals[op.Loc.Name] += amount
	}
}

func (e *faultExec) read(op *Op, p int) int {
	if op.Loc.IsArray {
		return e.arrays[op.Loc.Name][e.idx(op, p)]
	}
	return *e.globals[op.Loc.Name]
}

func (e *faultExec) idx(op *Op, p int) int {
	if op.Loc.IndexFromParam {
		return boundedIdx(p, e.spec.arraySize(op.Loc.Name))
	}
	return op.Loc.Index
}

func (e *faultExec) store() Store {
	st := Store{Globals: map[string]int{}, Arrays: map[string][]int{}}
	for name, v := range e.globals {
		st.Globals[name] = *v
	}
	for name, a := range e.arrays {
		st.Arrays[name] = append([]int(nil), a...)
	}
	return st
}

// checkOutcomes verifies every faulted future finished with its injected
// failure class.
func (e *faultExec) checkOutcomes() string {
	for _, ff := range e.faulted {
		if !ff.fut.IsDone() {
			return fmt.Sprintf("faulted task %s (%s) never finished", ff.name, ff.kind)
		}
		err := ff.fut.Err()
		var pe *core.PanicError
		ok := false
		switch ff.kind {
		case FaultPanic:
			ok = errors.As(err, &pe)
		case FaultCancel:
			ok = errors.Is(err, core.ErrCancelled)
		case FaultDeadline:
			ok = errors.Is(err, core.ErrDeadlineExceeded)
		}
		if !ok {
			return fmt.Sprintf("faulted task %s: injected %s but future reports %v", ff.name, ff.kind, err)
		}
	}
	return ""
}

// runFaultsOnRuntime executes the faulted spec on a fresh runtime with the
// named scheduler and (seed, schedule) yielder. Mirrors runOnRuntime but
// adds the fault-outcome and quiescence checks.
func runFaultsOnRuntime(spec *Spec, name string, seed int64, schedule int, cfg Config) (Store, *Failure) {
	sched := newScheduler(name)
	chk := isolcheck.New()
	opts := []core.Option{core.WithMonitor(chk)}
	if schedule != 0 {
		opts = append(opts, core.WithYield(Yielder(seed, schedule)))
	}
	tr := refineTracer(cfg)
	opts = withRefineTracer(opts, tr)
	rt := core.NewRuntime(sched, cfg.Parallelism, opts...)
	e := newFaultExec(spec, rt)

	fail := func(kind FailKind, format string, args ...any) *Failure {
		return &Failure{Seed: seed, Schedule: schedule, Scheduler: name,
			Kind: kind, Detail: fmt.Sprintf(format, args...)}
	}

	done := make(chan error, 1)
	go func() {
		_, err := rt.Execute(e.tasks[0], 0)
		if err == nil {
			// Fire-and-forget faulted futures may still be waiting on their
			// deadline; wait for each before draining the pool so the
			// quiescence check below is deterministic.
			e.mu.Lock()
			faulted := append([]faultedFut(nil), e.faulted...)
			e.mu.Unlock()
			for _, ff := range faulted {
				rt.GetValue(ff.fut)
			}
		}
		rt.Shutdown()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil && !isFaultErr(err) {
			return Store{}, fail(RuntimeError, "run: %v", err)
		}
	case <-time.After(cfg.Timeout):
		detail := fmt.Sprintf("no quiescence after %v", cfg.Timeout)
		if pc, ok := sched.(pendingCount); ok {
			detail += fmt.Sprintf("; %d task(s) still pending in scheduler queue", pc.Pending())
		}
		return Store{}, fail(Deadlock, "%s", detail)
	}

	if vs := chk.Violations(); len(vs) > 0 {
		return Store{}, fail(Isolation, "%d violation(s) under faults: %v", len(vs), vs)
	}
	if msg := e.checkOutcomes(); msg != "" {
		return Store{}, fail(FaultOutcome, "%s", msg)
	}
	if !rt.Quiesced() {
		return Store{}, fail(NotQuiesced, "scheduler retained bookkeeping after faulted run")
	}
	if f := refineCheck(tr, seed, schedule, name); f != nil {
		return Store{}, f
	}
	return e.store(), nil
}

// RunSpecFaults runs one faulted spec differentially across both
// schedulers and cfg.Schedules perturbed schedules, comparing every final
// store against the analytic expectation (which skips faulted tasks). The
// TWEL interpreter is skipped: the language has no failure constructs.
func RunSpecFaults(spec *Spec, cfg Config) []*Failure {
	cfg = cfg.withDefaults()
	expected := spec.ExpectedStore()
	var fails []*Failure
	for _, name := range schedulerNames {
		if cfg.onlyScheduler != "" && name != cfg.onlyScheduler {
			continue
		}
		for schedule := 0; schedule <= cfg.Schedules; schedule++ {
			if cfg.onlySchedule >= 0 && schedule != cfg.onlySchedule {
				continue
			}
			st, fail := runFaultsOnRuntime(spec, name, spec.Seed, schedule, cfg)
			if fail != nil {
				fails = append(fails, fail)
				continue
			}
			if !st.Equal(expected) {
				fails = append(fails, &Failure{Seed: spec.Seed, Schedule: schedule, Scheduler: name,
					Kind: StoreMismatch, Detail: "under faults: " + DiffStores("expected", expected, name, st)})
			}
		}
	}
	return fails
}

// FuzzOneFaults generates the program for one seed, injects faults, and
// runs it differentially.
func FuzzOneFaults(seed int64, cfg Config) []*Failure {
	return RunSpecFaults(WithFaults(Generate(seed), seed), cfg)
}

// ReplayFaults re-runs one seed with fault injection, optionally
// restricted to a single scheduler ("naive"/"tree", "" = both) and a
// single schedule index (negative = 0..cfg.Schedules). This is the engine
// behind `twe-fuzz -faults -seed N -schedule M`.
func ReplayFaults(seed int64, scheduler string, schedule int, cfg Config) []*Failure {
	cfg.filtered = true
	cfg.onlyScheduler = scheduler
	cfg.onlySchedule = schedule
	if schedule > cfg.Schedules {
		cfg.Schedules = schedule
	}
	return FuzzOneFaults(seed, cfg)
}

// FuzzFaults runs a fault-injection campaign over seeds [start, start+n).
func FuzzFaults(start int64, n int, cfg Config, progress func(seed int64, fails []*Failure)) *Report {
	rep := &Report{}
	for i := 0; i < n; i++ {
		seed := start + int64(i)
		spec := WithFaults(Generate(seed), seed)
		rep.Programs++
		rep.Instances += spec.Instances()
		fails := RunSpecFaults(spec, cfg)
		rep.Failures = append(rep.Failures, fails...)
		if progress != nil {
			progress(seed, fails)
		}
	}
	return rep
}
