package schedfuzz

import (
	"testing"
	"time"

	"twe/internal/lang"
	"twe/internal/semantics"
)

// TestGenerateDeterministic: the same seed must yield byte-identical
// programs — replay (twe-fuzz -seed N) depends on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p1, err1 := Render(Generate(seed))
		p2, err2 := Render(Generate(seed))
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: render: %v / %v", seed, err1, err2)
		}
		if lang.Format(p1) != lang.Format(p2) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// checkInvariants asserts the structural Spec invariants Render and the
// deadlock-freedom argument rely on.
func checkInvariants(t *testing.T, s *Spec) {
	t.Helper()
	if len(s.Tasks) == 0 || s.Tasks[0].Name != "main" ||
		s.Tasks[0].Kind != TaskDriver || s.Tasks[0].HasParam {
		t.Fatalf("seed %d: bad main task", s.Seed)
	}
	shared := map[string]bool{}
	for _, v := range s.Vars {
		private := false
		for _, r := range v.Path {
			if len(r) > 0 && r[0] == 'P' {
				private = true
			}
		}
		shared[v.Name] = !private
	}
	for ti, task := range s.Tasks {
		for _, op := range task.Ops {
			if op.createsChild() && op.Child <= ti {
				t.Fatalf("seed %d: task %d creates child %d (not strictly greater)", s.Seed, ti, op.Child)
			}
			switch task.Kind {
			case TaskDriver:
				switch op.Kind {
				case OpSpawn, OpJoin, OpCall:
					t.Fatalf("seed %d: driver %s has %v op", s.Seed, task.Name, op.Kind)
				case OpInc, OpLoopInc, OpCondInc, OpRead:
					if !op.Loc.IsArray && shared[op.Loc.Name] {
						t.Fatalf("seed %d: driver %s touches shared %s", s.Seed, task.Name, op.Loc.Name)
					}
					if op.Loc.IsArray {
						t.Fatalf("seed %d: driver %s touches array", s.Seed, task.Name)
					}
				}
			case TaskCompute:
				if op.Kind == OpLaunch || op.Kind == OpWait {
					t.Fatalf("seed %d: compute %s has %v op", s.Seed, task.Name, op.Kind)
				}
			}
		}
	}
}

// TestRenderAccepted: every generated program must pass the static checker
// (lang.Check) — Render fails otherwise — and satisfy the Spec invariants.
func TestRenderAccepted(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		spec := Generate(seed)
		checkInvariants(t, spec)
		if _, err := Render(spec); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := spec.Instances(); n > maxInstances {
			t.Fatalf("seed %d: %d instances exceeds cap", seed, n)
		}
	}
}

// TestInterpMatchesExpected: the formal-semantics interpreter must agree
// with the analytic store fold on every seed — validating both the
// determinism-by-construction argument and the ExpectedStore oracle.
func TestInterpMatchesExpected(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		spec := Generate(seed)
		prog, err := Render(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := semantics.Execute(prog, "main", seed, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Quiesced {
			t.Fatalf("seed %d: interpreter did not quiesce", seed)
		}
		if len(out.Violations) > 0 {
			t.Fatalf("seed %d: interpreter violations: %v", seed, out.Violations)
		}
		got := Store{Globals: out.Globals, Arrays: out.Arrays}
		if want := spec.ExpectedStore(); !got.Equal(want) {
			t.Fatalf("seed %d: %s", seed, DiffStores("expected", want, "interp", got))
		}
	}
}

// TestDifferentialSmall runs the full differential harness — interpreter,
// naive and tree schedulers, isolation oracle, schedule perturbation — on a
// modest seed range.
func TestDifferentialSmall(t *testing.T) {
	cfg := Config{Schedules: 2, Timeout: 20 * time.Second}
	for seed := int64(0); seed < 40; seed++ {
		for _, f := range RunSpec(Generate(seed), cfg) {
			t.Errorf("%v", f)
		}
	}
}

// TestFuzz1000 is the acceptance run: 1000 generated programs across both
// schedulers with schedule perturbation must complete with zero divergences
// and zero isolation violations.
func TestFuzz1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-program fuzz skipped in -short mode")
	}
	rep := Fuzz(0, 1000, Config{Schedules: 2, Timeout: 20 * time.Second}, nil)
	for _, f := range rep.Failures {
		t.Errorf("%v", f)
	}
	if rep.Programs != 1000 {
		t.Fatalf("ran %d programs", rep.Programs)
	}
}

// TestGeneratorInvalidReported: a spec whose rendered program breaks the
// covering-effect discipline must surface as a GeneratorInvalid failure, not
// be silently accepted — the harness checks its own generator.
func TestGeneratorInvalidReported(t *testing.T) {
	spec := &Spec{
		Seed:    -1,
		Regions: []string{"R0"},
		Vars:    []VarSpec{{Name: "v0", Path: []string{"R0"}}},
		Tasks: []*TaskSpec{
			{Name: "main", Kind: TaskDriver, Ops: []*Op{
				{Kind: OpLaunch, Child: 1, Fut: "f0"},
				{Kind: OpWait, Fut: "f0"},
			}},
			// Spawns a child writing v0, then writes v0 itself inside the
			// spawn window: the static checker must reject this.
			{Name: "bad", Kind: TaskCompute, HasParam: true, Ops: []*Op{
				{Kind: OpSpawn, Child: 2, Fut: "f0"},
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
			{Name: "leaf", Kind: TaskCompute, HasParam: true, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
		},
	}
	fails := RunSpec(spec, Config{Schedules: 0})
	if len(fails) != 1 || fails[0].Kind != GeneratorInvalid {
		t.Fatalf("want one GeneratorInvalid failure, got %v", fails)
	}
}

// TestShrinkSpec: the shrinker must preserve the failure predicate while
// strictly reducing the spec, and its output must still render to a
// checker-accepted program (the mutation helpers preserve the invariants).
func TestShrinkSpec(t *testing.T) {
	spec := Generate(7)
	countOps := func(s *Spec) (n int) {
		for _, task := range s.Tasks {
			n += len(task.Ops)
		}
		return
	}
	// Synthetic predicate: "fails" while the program still increments any
	// shared array element — shrinking must keep at least one such op.
	failing := func(s *Spec) bool {
		for _, task := range s.Tasks {
			for _, op := range task.Ops {
				switch op.Kind {
				case OpInc, OpLoopInc, OpCondInc:
					if op.Loc.IsArray {
						return true
					}
				}
			}
		}
		return false
	}
	if !failing(spec) {
		t.Skip("seed 7 generated no array increment; pick another seed")
	}
	shrunk := ShrinkSpec(spec, failing, 10_000)
	if !failing(shrunk) {
		t.Fatal("shrunk spec no longer fails")
	}
	if countOps(shrunk) >= countOps(spec) {
		t.Fatalf("no reduction: %d -> %d ops", countOps(spec), countOps(shrunk))
	}
	if len(shrunk.Tasks) > len(spec.Tasks) {
		t.Fatal("shrinking added tasks")
	}
	if _, err := Render(shrunk); err != nil {
		t.Fatalf("shrunk spec no longer renders: %v", err)
	}
}

// TestDropHelpers: DropTask and DropOp must preserve the structural
// invariants and never leave dangling futures or child indices.
func TestDropHelpers(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		spec := Generate(seed)
		for ti := len(spec.Tasks) - 1; ti >= 1; ti-- {
			s := spec.Clone()
			s.DropTask(ti)
			checkInvariants(t, s)
			if _, err := Render(s); err != nil {
				t.Fatalf("seed %d: DropTask(%d): %v", seed, ti, err)
			}
		}
		s := spec.Clone()
		for len(s.Tasks[0].Ops) > 0 {
			s.DropOp(0, 0)
		}
		checkInvariants(t, s)
	}
}

// TestExpectedStoreClone: Clone must be deep — mutating the clone's ops
// must not change the original's analytic store.
func TestExpectedStoreClone(t *testing.T) {
	spec := Generate(3)
	want := spec.ExpectedStore()
	c := spec.Clone()
	for _, task := range c.Tasks {
		for _, op := range task.Ops {
			op.Amount += 100
		}
	}
	if got := spec.ExpectedStore(); !got.Equal(want) {
		t.Fatal("mutating a clone changed the original spec")
	}
}
