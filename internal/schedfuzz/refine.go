// Refinement wiring: with Config.Refine set, every runtime execution in
// the fuzz sweep also records an event log (obs tracer + task log) and
// replays it against the executable admission model (internal/spec).
// A run can then fail three independent oracles: the isolation monitor
// (live overlap), the differential store comparison (wrong answer), and
// the refinement check (an admission-order history the model rejects).
package schedfuzz

import (
	"fmt"
	"strings"

	"twe/internal/core"
	"twe/internal/obs"
	"twe/internal/spec"
)

// refineRing sizes the per-run event ring: generated programs emit a few
// hundred events, so 8k per shard never wraps (a wrapped ring would turn
// the refinement check into a hard failure, not a silent skip).
const refineRing = 1 << 13

// refineTracer returns the tracer a refinement-checked run attaches, or
// nil when cfg.Refine is off.
func refineTracer(cfg Config) *obs.Tracer {
	if !cfg.Refine {
		return nil
	}
	return obs.New(obs.WithCapacity(refineRing), obs.WithTaskLog())
}

// withRefineTracer appends the tracer option when refinement is on.
func withRefineTracer(opts []core.Option, tr *obs.Tracer) []core.Option {
	if tr != nil {
		opts = append(opts, core.WithTracer(tr))
	}
	return opts
}

// refineCheck replays the run's event log against the admission model;
// call it only after the runtime has shut down cleanly (the oracle is
// strict: a drained run must have quiesced).
func refineCheck(tr *obs.Tracer, seed int64, schedule int, scheduler string) *Failure {
	if tr == nil {
		return nil
	}
	fail := func(format string, args ...any) *Failure {
		return &Failure{Seed: seed, Schedule: schedule, Scheduler: scheduler,
			Kind: Refinement, Detail: fmt.Sprintf(format, args...)}
	}
	errs, err := spec.RefineTracer(tr, spec.RefineOpts{Strict: true})
	if err != nil {
		return fail("unusable event log: %v", err)
	}
	if len(errs) == 0 {
		return nil
	}
	const show = 5
	msgs := make([]string, 0, show+1)
	for i, e := range errs {
		if i == show {
			msgs = append(msgs, fmt.Sprintf("… %d more", len(errs)-show))
			break
		}
		msgs = append(msgs, e.String())
	}
	return fail("%d refinement violation(s): %s", len(errs), strings.Join(msgs, "; "))
}
