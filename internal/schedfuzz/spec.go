package schedfuzz

import (
	"fmt"
	"sort"
	"strings"

	"twe/internal/effect"
	"twe/internal/rpl"
)

// Spec is the generator's intermediate representation of one fuzz program: a
// task DAG over a small region universe, low-level enough to mutate (the
// shrinker drops tasks and ops) and high-level enough to render to a TWEL
// program and to fold analytically into the expected final store.
//
// Structural invariants (established by Generate, preserved by the mutation
// helpers; Render assumes them):
//
//   - Tasks[0] is "main": a driver with no parameter. Every other task has
//     exactly one parameter p.
//   - Child indices in Launch/Spawn/Call ops are strictly greater than the
//     index of the task containing the op, so the task graph is acyclic.
//   - Driver tasks (TaskDriver) create and wait for tasks but touch only
//     their own private locations; compute tasks (TaskCompute) touch shared
//     locations but never executeLater/getValue. This split keeps every
//     generated program deadlock-free: wait edges go strictly down the index
//     order and effect-conflict edges never enter a task that can block
//     while holding them (see the package comment in schedfuzz.go).
//   - All global writes are commutative constant increments, so the final
//     store is schedule-independent and exactly comparable across the
//     semantics interpreter, the naive scheduler, and the tree scheduler.
type Spec struct {
	Seed    int64
	Regions []string
	Vars    []VarSpec
	Arrays  []ArraySpec
	Refs    []string
	Tasks   []*TaskSpec
}

// VarSpec declares a scalar global living in the region path Path.
type VarSpec struct {
	Name string
	Path []string
}

// ArraySpec declares a global array; element i lives in Path:[i].
type ArraySpec struct {
	Name string
	Size int
	Path []string
}

// TaskKind partitions tasks into drivers and compute tasks (see Spec).
type TaskKind uint8

const (
	// TaskDriver tasks orchestrate: executeLater/getValue, plus increments
	// restricted to the driver's private locations.
	TaskDriver TaskKind = iota
	// TaskCompute tasks do effectful work on shared state and may
	// spawn/join or inline-call other compute tasks; they never
	// executeLater or getValue.
	TaskCompute
)

// TaskSpec is one task declaration. Ops execute sequentially.
type TaskSpec struct {
	Name          string
	Kind          TaskKind
	HasParam      bool
	Deterministic bool
	// WidenSeed, when nonzero, widens the task's inferred effect summary
	// (indices to [?], suffixes to *, reads to writes) before declaring it.
	// Only tasks that are never spawn or call targets may be widened.
	WidenSeed uint64
	// Fault marks the task as fault-injected (see faults.go): its body is
	// replaced by a deterministic failure stub, so it contributes nothing
	// to the store. Set by WithFaults; FaultNone for ordinary specs.
	Fault FaultKind
	Ops   []*Op
}

// Loc identifies a scalar global or one array element.
type Loc struct {
	Name    string
	IsArray bool
	// Index is the constant element index; if IndexFromParam, the index is
	// ((p % size) + size) % size instead.
	Index          int
	IndexFromParam bool
}

// OpKind enumerates the op repertoire.
type OpKind uint8

const (
	// OpInc: Loc = Loc + Amount (or + p when AmountFromParam).
	OpInc OpKind = iota
	// OpLoopInc: a counted loop performing Count increments of Amount.
	OpLoopInc
	// OpCondInc: if (p < CondK) { Loc = Loc + Amount }.
	OpCondInc
	// OpRead: a local sink read of Loc (read effect, no store change).
	OpRead
	// OpLaunch: Fut = executeLater Child(arg).
	OpLaunch
	// OpWait: getValue(Fut).
	OpWait
	// OpSpawn: Fut = spawn Child(arg).
	OpSpawn
	// OpJoin: join(Fut). A spawn without a join is joined implicitly when
	// the body ends.
	OpJoin
	// OpCall: inline call Child(arg).
	OpCall
	// OpRefUse: addread/addwrite Ref; useref Ref — dynamic-effect syntax,
	// a no-op at run time.
	OpRefUse
)

func (k OpKind) String() string {
	switch k {
	case OpInc:
		return "inc"
	case OpLoopInc:
		return "loopinc"
	case OpCondInc:
		return "condinc"
	case OpRead:
		return "read"
	case OpLaunch:
		return "launch"
	case OpWait:
		return "wait"
	case OpSpawn:
		return "spawn"
	case OpJoin:
		return "join"
	case OpCall:
		return "call"
	case OpRefUse:
		return "refuse"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one operation of a task body. Which fields are meaningful depends
// on Kind.
type Op struct {
	Kind            OpKind
	Loc             Loc
	Amount          int
	AmountFromParam bool
	Count           int
	CondK           int
	Child           int
	Fut             string
	Arg             int
	ArgFromParam    bool
	Ref             string
	RefWrite        bool
}

// createsChild reports that the op instantiates Child.
func (o *Op) createsChild() bool {
	return o.Kind == OpLaunch || o.Kind == OpSpawn || o.Kind == OpCall
}

// Store is a final program store: globals plus arrays. It is the unit of
// differential comparison.
type Store struct {
	Globals map[string]int
	Arrays  map[string][]int
}

// Equal reports exact store equality.
func (s Store) Equal(o Store) bool {
	if len(s.Globals) != len(o.Globals) || len(s.Arrays) != len(o.Arrays) {
		return false
	}
	for k, v := range s.Globals {
		if ov, ok := o.Globals[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.Arrays {
		ov, ok := o.Arrays[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	return true
}

// String renders the store with sorted keys, for failure reports.
func (s Store) String() string {
	var parts []string
	for _, k := range sortedKeys(s.Globals) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.Globals[k]))
	}
	arrKeys := make([]string, 0, len(s.Arrays))
	for k := range s.Arrays {
		arrKeys = append(arrKeys, k)
	}
	sort.Strings(arrKeys)
	for _, k := range arrKeys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, s.Arrays[k]))
	}
	return strings.Join(parts, " ")
}

// DiffStores describes the first differences between two stores.
func DiffStores(label1 string, a Store, label2 string, b Store) string {
	var diffs []string
	for _, k := range sortedKeys(a.Globals) {
		if a.Globals[k] != b.Globals[k] {
			diffs = append(diffs, fmt.Sprintf("%s: %s=%d vs %s=%d", k, label1, a.Globals[k], label2, b.Globals[k]))
		}
	}
	arrKeys := make([]string, 0, len(a.Arrays))
	for k := range a.Arrays {
		arrKeys = append(arrKeys, k)
	}
	sort.Strings(arrKeys)
	for _, k := range arrKeys {
		av, bv := a.Arrays[k], b.Arrays[k]
		for i := range av {
			if i >= len(bv) || av[i] != bv[i] {
				diffs = append(diffs, fmt.Sprintf("%s[%d]: %s=%d vs %s", k, i, label1, av[i], label2))
				break
			}
		}
	}
	if len(diffs) == 0 {
		return "stores equal"
	}
	return strings.Join(diffs, "; ")
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocRegion resolves a Loc to its conservative RPL: param-dependent array
// indices become [?]. Shared by the generator's effect inference and the
// direct-on-core fault executor.
func (s *Spec) LocRegion(l Loc) rpl.RPL {
	var path []string
	if l.IsArray {
		for _, a := range s.Arrays {
			if a.Name == l.Name {
				path = a.Path
				break
			}
		}
	} else {
		for _, v := range s.Vars {
			if v.Name == l.Name {
				path = v.Path
				break
			}
		}
	}
	elems := make([]rpl.Elem, 0, len(path)+1)
	for _, n := range path {
		elems = append(elems, rpl.N(n))
	}
	if l.IsArray {
		if l.IndexFromParam {
			elems = append(elems, rpl.AnyIdx)
		} else {
			elems = append(elems, rpl.Idx(l.Index))
		}
	}
	return rpl.New(elems...)
}

// ConsEffects computes the conservative effect summary of every task: its
// own accesses plus the summaries of its spawn/call children (launch
// children are independent tasks and transfer nothing). It matches the
// generator's incremental consEff computation for a fully built spec and
// over-approximates every actual access, so tasks declared with it are
// soundly schedulable.
func (s *Spec) ConsEffects() []effect.Set {
	effs := make([]effect.Set, len(s.Tasks))
	for i := len(s.Tasks) - 1; i >= 0; i-- {
		var own effect.Set
		for _, op := range s.Tasks[i].Ops {
			switch op.Kind {
			case OpInc, OpLoopInc, OpCondInc:
				own = own.Union(effect.NewSet(effect.WriteEff(s.LocRegion(op.Loc))))
			case OpRead:
				own = own.Union(effect.NewSet(effect.Read(s.LocRegion(op.Loc))))
			case OpSpawn, OpCall:
				own = own.Union(effs[op.Child])
			}
		}
		effs[i] = own
	}
	return effs
}

// arraySize returns the declared size of the named array.
func (s *Spec) arraySize(name string) int {
	for _, a := range s.Arrays {
		if a.Name == name {
			return a.Size
		}
	}
	return 1
}

// boundedIdx mirrors the rendered ((p % size) + size) % size expression.
func boundedIdx(p, size int) int {
	return ((p % size) + size) % size
}

// ExpectedStore folds the spec analytically into the unique final store.
// Because every write is a commutative constant increment and the schedulers
// make each task atomic with respect to interfering tasks, every legal
// schedule of the interpreter and of both runtimes must produce exactly this
// store — the analytic half of the differential oracle.
func (s *Spec) ExpectedStore() Store {
	st := Store{Globals: map[string]int{}, Arrays: map[string][]int{}}
	for _, v := range s.Vars {
		st.Globals[v.Name] = 0
	}
	for _, a := range s.Arrays {
		st.Arrays[a.Name] = make([]int, a.Size)
	}
	var run func(ti, arg int)
	run = func(ti, arg int) {
		if s.Tasks[ti].Fault != FaultNone {
			// A fault-injected task's body is a failure stub: it performs no
			// accesses and creates no children.
			return
		}
		for _, op := range s.Tasks[ti].Ops {
			amount := op.Amount
			if op.AmountFromParam {
				amount = arg
			}
			switch op.Kind {
			case OpInc:
				s.applyInc(&st, op, arg, amount)
			case OpLoopInc:
				for i := 0; i < op.Count; i++ {
					s.applyInc(&st, op, arg, amount)
				}
			case OpCondInc:
				if arg < op.CondK {
					s.applyInc(&st, op, arg, amount)
				}
			case OpLaunch, OpSpawn, OpCall:
				childArg := op.Arg
				if op.ArgFromParam {
					childArg = arg
				}
				run(op.Child, childArg)
			}
		}
	}
	run(0, 0)
	return st
}

func (s *Spec) applyInc(st *Store, op *Op, arg, amount int) {
	if op.Loc.IsArray {
		idx := op.Loc.Index
		if op.Loc.IndexFromParam {
			idx = boundedIdx(arg, s.arraySize(op.Loc.Name))
		}
		st.Arrays[op.Loc.Name][idx] += amount
	} else {
		st.Globals[op.Loc.Name] += amount
	}
}

// Instances returns the total number of task instances one run creates
// (main plus every transitive launch/spawn/call). Generate keeps it bounded.
func (s *Spec) Instances() int {
	memo := make([]int, len(s.Tasks))
	for i := len(s.Tasks) - 1; i >= 0; i-- {
		n := 1
		for _, op := range s.Tasks[i].Ops {
			if op.createsChild() {
				n += memo[op.Child]
			}
		}
		memo[i] = n
	}
	if len(memo) == 0 {
		return 0
	}
	return memo[0]
}

// Clone deep-copies the spec so mutations don't alias.
func (s *Spec) Clone() *Spec {
	out := &Spec{
		Seed:    s.Seed,
		Regions: append([]string(nil), s.Regions...),
		Vars:    make([]VarSpec, len(s.Vars)),
		Arrays:  make([]ArraySpec, len(s.Arrays)),
		Refs:    append([]string(nil), s.Refs...),
		Tasks:   make([]*TaskSpec, len(s.Tasks)),
	}
	for i, v := range s.Vars {
		out.Vars[i] = VarSpec{Name: v.Name, Path: append([]string(nil), v.Path...)}
	}
	for i, a := range s.Arrays {
		out.Arrays[i] = ArraySpec{Name: a.Name, Size: a.Size, Path: append([]string(nil), a.Path...)}
	}
	for i, t := range s.Tasks {
		nt := *t
		nt.Ops = make([]*Op, len(t.Ops))
		for j, op := range t.Ops {
			cp := *op
			nt.Ops[j] = &cp
		}
		out.Tasks[i] = &nt
	}
	return out
}

// DropTask removes task ti (never 0) along with every op that creates or
// waits for it, renumbering the remaining child indices. The result
// preserves the Spec invariants.
func (s *Spec) DropTask(ti int) {
	if ti <= 0 || ti >= len(s.Tasks) {
		return
	}
	s.Tasks = append(s.Tasks[:ti], s.Tasks[ti+1:]...)
	for _, t := range s.Tasks {
		var kept []*Op
		dropped := map[string]bool{} // futures of dropped creators
		for _, op := range t.Ops {
			if op.createsChild() && op.Child == ti {
				if op.Fut != "" {
					dropped[op.Fut] = true
				}
				continue
			}
			if (op.Kind == OpWait || op.Kind == OpJoin) && dropped[op.Fut] {
				continue
			}
			if op.createsChild() && op.Child > ti {
				op.Child--
			}
			kept = append(kept, op)
		}
		t.Ops = kept
	}
}

// DropOp removes op j of task ti; if the op creates a future, its paired
// wait/join is removed too.
func (s *Spec) DropOp(ti, j int) {
	if ti < 0 || ti >= len(s.Tasks) {
		return
	}
	t := s.Tasks[ti]
	if j < 0 || j >= len(t.Ops) {
		return
	}
	victim := t.Ops[j]
	var kept []*Op
	for k, op := range t.Ops {
		if k == j {
			continue
		}
		if victim.createsChild() && victim.Fut != "" &&
			(op.Kind == OpWait || op.Kind == OpJoin) && op.Fut == victim.Fut {
			continue
		}
		kept = append(kept, op)
	}
	t.Ops = kept
}
