package schedfuzz

import (
	"testing"
)

// TestBatchDifferentialPinnedSeeds is the batch-mode differential check:
// pinned seeds, launches grouped into SubmitBatch calls at seed-derived
// boundaries, both schedulers, unperturbed plus one perturbed schedule —
// store equality, isolation, and quiescence all asserted inside
// RunSpecBatch. At least some multi-task groups must have been flushed,
// or the mode silently degenerated to per-task submission.
func TestBatchDifferentialPinnedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Schedules: 1}
	var groups int64
	for seed := int64(0); seed < 40; seed++ {
		fails, g := RunSpecBatch(Generate(seed), cfg)
		if len(fails) > 0 {
			t.Fatalf("seed %d: %v", seed, fails[0])
		}
		groups += g
	}
	if groups == 0 {
		t.Fatal("no multi-task SubmitBatch group across 40 seeds — batch mode is inert")
	}
}

// TestBatchGroupsDeterministic: the flush boundaries derive only from the
// seed, so two runs of one seed must flush the same number of groups —
// that is what makes naive and tree receive identical batch sequences.
func TestBatchGroupsDeterministic(t *testing.T) {
	cfg := Config{Schedules: 0}
	for seed := int64(0); seed < 10; seed++ {
		_, a := RunSpecBatch(Generate(seed), cfg)
		_, b := RunSpecBatch(Generate(seed), cfg)
		if a != b {
			t.Fatalf("seed %d: group count not deterministic: %d vs %d", seed, a, b)
		}
	}
}

// TestBatchIntraGroupConflict pins a hand-written spec whose batch holds
// interfering members: all four launches write the same variable, and the
// boundary coin (seed 0, param 0) keeps at least two in one group. The
// expected store catches any lost update; isolcheck catches any overlap.
func TestBatchIntraGroupConflict(t *testing.T) {
	spec := &Spec{
		Seed:    0,
		Regions: []string{"R"},
		Vars:    []VarSpec{{Name: "v0", Path: []string{"R"}}},
		Tasks: []*TaskSpec{
			{Name: "main", Kind: TaskDriver, Ops: []*Op{
				{Kind: OpLaunch, Child: 1, Fut: "f1"},
				{Kind: OpLaunch, Child: 1, Fut: "f2"},
				{Kind: OpLaunch, Child: 1, Fut: "f3"},
				{Kind: OpLaunch, Child: 1, Fut: "f4"},
				{Kind: OpWait, Fut: "f1"},
				{Kind: OpWait, Fut: "f2"},
				{Kind: OpWait, Fut: "f3"},
				{Kind: OpWait, Fut: "f4"},
			}},
			{Name: "inc", Kind: TaskCompute, HasParam: true, Ops: []*Op{
				{Kind: OpInc, Loc: Loc{Name: "v0"}, Amount: 1},
			}},
		},
	}
	fails, _ := RunSpecBatch(spec, Config{Schedules: 2})
	if len(fails) > 0 {
		t.Fatalf("intra-group conflict spec failed: %v", fails[0])
	}
	if st := spec.ExpectedStore(); st.Globals["v0"] != 4 {
		t.Fatalf("expected store v0 = %d, want 4", st.Globals["v0"])
	}
}
