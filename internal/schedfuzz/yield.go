package schedfuzz

import (
	"runtime"
	"time"

	"twe/internal/core"
)

// Yielder produces the controlled-preemption function installed into the
// runtime with core.WithYield. At every scheduling-relevant point (submit,
// start, block, unblock, finish) it decides — as a pure function of
// (seed, schedule, future sequence number, point) — whether the current
// goroutine yields the processor, and how hard. Varying the schedule index
// with a fixed seed drives the same program through different interleavings
// deterministically enough that `twe-fuzz -seed N -schedule M` replays the
// perturbation pattern exactly; the Go runtime adds residual nondeterminism,
// which the differential oracle tolerates because correct outcomes are
// schedule-independent by construction.
//
// Schedule 0 means "no perturbation": callers should install no yielder at
// all for it, keeping a pristine baseline in the schedule sweep.
func Yielder(seed int64, schedule int) func(f *core.Future, p core.YieldPoint) {
	base := mix(mix(uint64(seed), uint64(schedule)+0x51ed2701), 0x2545f4914f6cdd1d)
	return func(f *core.Future, p core.YieldPoint) {
		h := mix(base, f.Seq()*8+uint64(p))
		switch h % 16 {
		case 0, 1, 2, 3:
			runtime.Gosched()
		case 4, 5:
			for i := 0; i < int(h>>4%4)+2; i++ {
				runtime.Gosched()
			}
		case 6:
			// A real delay reorders more aggressively than Gosched when all
			// workers are runnable.
			time.Sleep(time.Duration(h>>4%50+1) * time.Microsecond)
		default:
			// No yield: most points proceed untouched so programs still
			// finish quickly.
		}
	}
}

// mix is a splitmix64-style finalizer over the pair (h, v).
func mix(h, v uint64) uint64 {
	z := h ^ (v + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
