package schedfuzz

import (
	"strings"
	"sync"
	"testing"

	"twe/internal/core"
	"twe/internal/effect"
	"twe/internal/spec"
	"twe/internal/tree"
)

// TestRefineCatchesBrokenTreeScheduler: the seeded mutation (admission
// without conflict checking) lets two write-conflicting tasks rendezvous
// on a barrier — something only concurrent bodies can do — and the run's
// event log must be rejected by the refinement oracle. This is the
// trace-side half of the ISSUE 8 acceptance case (Explore catches the
// same mutation as a model counterexample).
//
// The bodies share nothing but a WaitGroup, so the deliberately broken
// scheduler cannot trip the race detector.
func TestRefineCatchesBrokenTreeScheduler(t *testing.T) {
	tr := refineTracer(Config{Refine: true})
	sched := tree.NewWithOptions(tree.Options{UnsafeSkipConflictCheck: true})
	rt := core.NewRuntime(sched, 4, core.WithTracer(tr))
	wA := effect.MustParse("writes Root:A")

	var barrier sync.WaitGroup
	barrier.Add(2)
	meet := func(*core.Ctx, any) (any, error) {
		// Arrive, then wait for the sibling: completes only if the
		// scheduler ran both interfering bodies at once.
		barrier.Done()
		barrier.Wait()
		return nil, nil
	}
	m0 := rt.Submit(core.NewTask("m0", wA, meet))
	m1 := rt.Submit(core.NewTask("m1", wA, meet))
	if _, err := rt.GetValue(m0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.GetValue(m1); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()

	errs, err := spec.RefineTracer(tr, spec.RefineOpts{Strict: true})
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	if len(errs) == 0 {
		t.Fatal("broken scheduler's event log was accepted by the refinement oracle")
	}
	found := false
	for _, e := range errs {
		if strings.HasPrefix(e.Rule, "R1") || strings.HasPrefix(e.Rule, "R2") {
			found = true
		}
	}
	if !found {
		t.Errorf("want an isolation-rule (R1/R2) violation, got %v", errs)
	}
	t.Logf("oracle rejected the mutated scheduler: %v", errs[0])
}

// TestRefineGeneratedSweep: a pinned slice of the generated-program space
// under both schedulers, every run refinement-checked — the same sweep
// ci.sh pins via `twe-fuzz -refine -seed 0`. Also covers the faulted
// (cancel/deadline release) and batched (group admission) run paths.
func TestRefineGeneratedSweep(t *testing.T) {
	cfg := Config{Schedules: 2, Refine: true}
	for seed := int64(0); seed < 8; seed++ {
		if fails := FuzzOne(seed, cfg); len(fails) != 0 {
			t.Errorf("seed %d: %v", seed, fails[0])
		}
	}
	for seed := int64(0); seed < 4; seed++ {
		if fails := FuzzOneFaults(seed, cfg); len(fails) != 0 {
			t.Errorf("faults seed %d: %v", seed, fails[0])
		}
		if fails := FuzzOneBatch(seed, cfg); len(fails) != 0 {
			t.Errorf("batch seed %d: %v", seed, fails[0])
		}
	}
}

// TestRefineSweepCatchesBrokenScheduler: the oracle also rejects the
// mutated scheduler on generated-spec effect workloads, not just the
// handcrafted rendezvous. The bodies hold a start gate open across all
// submissions (and touch no shared memory — the mutant would genuinely
// race a real program's store), so under the mutation every conflicting
// task is admitted while its rival still holds effects: a deterministic
// R2 history, independent of body timing.
func TestRefineSweepCatchesBrokenScheduler(t *testing.T) {
	caught, eligible := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		effs := Generate(seed).ConsEffects()
		conflicting := false
		for i := range effs {
			for j := i + 1; j < len(effs); j++ {
				conflicting = conflicting || effs[i].Conflicts(effs[j])
			}
		}
		if !conflicting {
			continue
		}
		eligible++

		tr := refineTracer(Config{Refine: true})
		sched := tree.NewWithOptions(tree.Options{UnsafeSkipConflictCheck: true})
		rt := core.NewRuntime(sched, 4, core.WithTracer(tr))
		gate := make(chan struct{})
		var futs []*core.Future
		for _, e := range effs {
			futs = append(futs, rt.Submit(core.NewTask("t", e,
				func(*core.Ctx, any) (any, error) { <-gate; return nil, nil })))
		}
		close(gate)
		for _, f := range futs {
			rt.GetValue(f)
		}
		rt.Shutdown()

		errs, err := spec.RefineTracer(tr, spec.RefineOpts{Strict: true})
		if err != nil {
			t.Fatalf("seed %d: refine: %v", seed, err)
		}
		if len(errs) > 0 {
			caught++
		} else {
			t.Errorf("seed %d: mutant admitted %d conflicting tasks concurrently, oracle accepted the log", seed, len(effs))
		}
	}
	if eligible == 0 {
		t.Fatal("no generated spec in the sweep had conflicting effects — widen the seed range")
	}
	t.Logf("oracle rejected the mutant on %d/%d eligible generated specs", caught, eligible)
}
