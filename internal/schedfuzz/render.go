package schedfuzz

import (
	"fmt"
	"strings"

	"twe/internal/effect"
	"twe/internal/lang"
	"twe/internal/rpl"
)

// Render lowers a Spec to a TWEL program. Effect summaries are derived from
// the bodies with lang.Infer, then optionally widened (WidenSeed) to stress
// the schedulers with wildcard and over-approximate declarations, and the
// result is verified with lang.Check: the generated programs must be
// accepted by the static checker, otherwise the generator itself is broken
// and Render reports it.
func Render(s *Spec) (*lang.Program, error) {
	p := &lang.Program{Regions: append([]string(nil), s.Regions...)}
	for _, v := range s.Vars {
		p.Vars = append(p.Vars, &lang.VarDecl{Name: v.Name, Region: pathExpr(v.Path)})
	}
	for _, a := range s.Arrays {
		p.Arrays = append(p.Arrays, &lang.ArrayDecl{Name: a.Name, Size: a.Size, Region: pathExpr(a.Path)})
	}
	for _, r := range s.Refs {
		p.RefVars = append(p.RefVars, &lang.RefVarDecl{Name: r})
	}
	for _, t := range s.Tasks {
		td := &lang.TaskDecl{Name: t.Name, Deterministic: t.Deterministic}
		if t.HasParam {
			td.Params = []string{"p"}
		}
		td.Body = &lang.Block{Stmts: renderOps(s, t)}
		p.Tasks = append(p.Tasks, td)
	}

	inferred := lang.Infer(p)
	for i, td := range p.Tasks {
		set := inferred[td.Name]
		if ws := s.Tasks[i].WidenSeed; ws != 0 {
			set = widen(set, ws)
		}
		td.Effects = lang.EffectItems(set)
	}

	res := lang.Check(p)
	if !res.OK() {
		msgs := make([]string, 0, len(res.Errors))
		for _, d := range res.Errors {
			msgs = append(msgs, d.String())
		}
		return nil, fmt.Errorf("generated program rejected by checker:\n%s\nprogram:\n%s",
			strings.Join(msgs, "\n"), lang.Format(p))
	}
	return p, nil
}

func pathExpr(path []string) *lang.RPLExpr {
	r := &lang.RPLExpr{}
	for _, n := range path {
		r.Elems = append(r.Elems, lang.RPLElemExpr{Kind: lang.ElemName, Name: n})
	}
	return r
}

// renderOps lowers a task body. Op j uses locals named after j, so the
// rendered names stay unique within the body.
func renderOps(s *Spec, t *TaskSpec) []lang.Stmt {
	var out []lang.Stmt
	for j, op := range t.Ops {
		switch op.Kind {
		case OpInc:
			out = append(out, incStmt(s, op))
		case OpLoopInc:
			ctr := fmt.Sprintf("i%d", j)
			out = append(out,
				&lang.LocalDecl{Name: ctr, Value: &lang.Num{Value: 0}},
				&lang.While{
					Cond: &lang.Binary{Op: "<", L: &lang.Ident{Name: ctr}, R: &lang.Num{Value: op.Count}},
					Body: &lang.Block{Stmts: []lang.Stmt{
						incStmt(s, op),
						&lang.LocalDecl{Name: ctr, Value: &lang.Binary{Op: "+", L: &lang.Ident{Name: ctr}, R: &lang.Num{Value: 1}}},
					}},
				})
		case OpCondInc:
			out = append(out, &lang.If{
				Cond: &lang.Binary{Op: "<", L: &lang.Ident{Name: "p"}, R: &lang.Num{Value: op.CondK}},
				Then: &lang.Block{Stmts: []lang.Stmt{incStmt(s, op)}},
			})
		case OpRead:
			out = append(out, &lang.LocalDecl{Name: fmt.Sprintf("s%d", j), Value: locRead(s, op)})
		case OpLaunch:
			out = append(out, &lang.LetFuture{Name: op.Fut, Task: s.Tasks[op.Child].Name, Args: []lang.Expr{argExpr(op)}})
		case OpWait:
			out = append(out, &lang.Wait{Future: op.Fut})
		case OpSpawn:
			out = append(out, &lang.LetFuture{Name: op.Fut, Spawn: true, Task: s.Tasks[op.Child].Name, Args: []lang.Expr{argExpr(op)}})
		case OpJoin:
			out = append(out, &lang.Wait{Join: true, Future: op.Fut})
		case OpCall:
			out = append(out, &lang.Call{Task: s.Tasks[op.Child].Name, Args: []lang.Expr{argExpr(op)}})
		case OpRefUse:
			mode := "addread"
			if op.RefWrite {
				mode = "addwrite"
			}
			out = append(out,
				&lang.RefOp{Op: mode, Ref: op.Ref},
				&lang.RefOp{Op: "useref", Ref: op.Ref})
		}
	}
	if len(out) == 0 {
		out = append(out, &lang.Skip{})
	}
	return out
}

// incStmt renders "loc = loc + amount".
func incStmt(s *Spec, op *Op) lang.Stmt {
	amount := lang.Expr(&lang.Num{Value: op.Amount})
	if op.AmountFromParam {
		amount = &lang.Ident{Name: "p"}
	}
	if op.Loc.IsArray {
		// The index expression is duplicated on both sides; it is
		// deterministic (a constant or a pure function of p), so both
		// evaluations resolve to the same element.
		return &lang.AssignArray{
			Name:  op.Loc.Name,
			Index: idxExpr(s, op.Loc),
			Value: &lang.Binary{Op: "+", L: locRead(s, op), R: amount},
		}
	}
	return &lang.AssignVar{
		Name:  op.Loc.Name,
		Value: &lang.Binary{Op: "+", L: locRead(s, op), R: amount},
	}
}

func locRead(s *Spec, op *Op) lang.Expr {
	if op.Loc.IsArray {
		return &lang.ArrayRead{Name: op.Loc.Name, Index: idxExpr(s, op.Loc)}
	}
	return &lang.Ident{Name: op.Loc.Name}
}

// idxExpr renders the element index: a constant, or the in-range form
// ((p % size) + size) % size mirrored by Spec.boundedIdx.
func idxExpr(s *Spec, l Loc) lang.Expr {
	if !l.IndexFromParam {
		return &lang.Num{Value: l.Index}
	}
	size := s.arraySize(l.Name)
	inner := &lang.Binary{Op: "%", L: &lang.Ident{Name: "p"}, R: &lang.Num{Value: size}}
	return &lang.Binary{Op: "%",
		L: &lang.Binary{Op: "+", L: inner, R: &lang.Num{Value: size}},
		R: &lang.Num{Value: size}}
}

func argExpr(op *Op) lang.Expr {
	if op.ArgFromParam {
		return &lang.Ident{Name: "p"}
	}
	return &lang.Num{Value: op.Arg}
}

// widen over-approximates an inferred summary, deterministically from the
// seed: individual index elements become [?], suffixes collapse to *, and
// reads become writes. Every transformation only enlarges the summary, so
// the declaration still covers the body — but the schedulers now see
// wildcard RPLs and coarser conflicts, exercising the Included/Disjoint
// machinery on partially specified RPLs (§2.3.1) and the conservative
// must-conflict admission paths.
func widen(s effect.Set, seed uint64) effect.Set {
	h := seed
	next := func(n int) int {
		// splitmix64 step: deterministic, seed-derived decisions.
		h += 0x9e3779b97f4a7c15
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int(z % uint64(n))
	}
	var out []effect.Effect
	for _, e := range s.Effects() {
		r := e.Region
		elems := r.Elems()
		// Index-like elements → [?] with probability 1/3 each.
		for i, el := range elems {
			if (el.Kind == rpl.Index || el.Kind == rpl.Param) && next(3) == 0 {
				elems[i] = rpl.AnyIdx
			}
		}
		// Collapse a suffix to *: keep at least one leading element so the
		// widened region does not swallow unrelated subtrees of Root.
		if len(elems) >= 1 && next(4) == 0 {
			keep := 1 + next(len(elems))
			if keep > len(elems) {
				keep = len(elems)
			}
			elems = append(elems[:keep:keep], rpl.Any)
		}
		write := e.Write
		if !write && next(3) == 0 {
			write = true
		}
		ne := effect.Read(rpl.New(elems...))
		if write {
			ne = effect.WriteEff(rpl.New(elems...))
		}
		out = append(out, ne)
	}
	return effect.NewSet(out...)
}
