package schedfuzz

import (
	"fmt"
	"math/rand"

	"twe/internal/effect"
	"twe/internal/rpl"
)

// maxInstances bounds the total task instances one generated program
// creates; Generate trims child-creating ops deterministically past it.
const maxInstances = 250

// Generate derives a Spec from the seed. The same seed always yields the
// same spec — replay regenerates programs rather than storing them.
func Generate(seed int64) *Spec {
	g := &gen{
		rnd:  rand.New(rand.NewSource(seed)),
		spec: &Spec{Seed: seed},
	}
	g.plan()
	// Compute tasks are generated from the highest index down so that a
	// task's child candidates (strictly higher indices) are complete, with
	// their conservative effect summaries known.
	for i := len(g.spec.Tasks) - 1; i >= g.nDrivers; i-- {
		g.computeOps(i)
	}
	for i := g.nDrivers - 1; i >= 0; i-- {
		g.driverOps(i)
	}
	g.assignWidening()
	g.trim()
	return g.spec
}

type gen struct {
	rnd  *rand.Rand
	spec *Spec

	nDrivers int
	// sharedVars / sharedArrays index into spec.Vars / spec.Arrays.
	sharedVars   []int
	sharedArrays []int
	// privateVar[d] is the spec.Vars index of driver d's private scalar, or
	// -1; probeOf[d] is the task index of its probe compute task, or -1.
	privateVar []int
	probeOf    []int
	// ownerOf[t] is the owning driver of probe task t, or -1.
	ownerOf []int
	// consEff[t] is the conservative effect summary of task t: its own
	// accesses (param-dependent indices as [?]) plus the summaries of its
	// spawn/call children. It over-approximates the declared summary Render
	// later infers, so non-interference checked against it is sound.
	consEff []effect.Set
}

// plan fixes the region universe, globals, and the task skeleton.
func (g *gen) plan() {
	s := g.spec
	nRegions := 2 + g.rnd.Intn(3)
	for i := 0; i < nRegions; i++ {
		s.Regions = append(s.Regions, fmt.Sprintf("R%d", i))
	}
	nVars := 2 + g.rnd.Intn(3)
	for i := 0; i < nVars; i++ {
		g.sharedVars = append(g.sharedVars, len(s.Vars))
		s.Vars = append(s.Vars, VarSpec{Name: fmt.Sprintf("v%d", i), Path: g.sharedPath()})
	}
	nArrays := 1 + g.rnd.Intn(2)
	for i := 0; i < nArrays; i++ {
		g.sharedArrays = append(g.sharedArrays, len(s.Arrays))
		s.Arrays = append(s.Arrays, ArraySpec{
			Name: fmt.Sprintf("a%d", i),
			Size: 3 + g.rnd.Intn(4),
			Path: g.sharedPath(),
		})
	}
	for i, n := 0, g.rnd.Intn(3); i < n; i++ {
		s.Refs = append(s.Refs, fmt.Sprintf("r%d", i))
	}

	g.nDrivers = 2 + g.rnd.Intn(2)
	nCompute := 3 + g.rnd.Intn(3)
	g.privateVar = make([]int, g.nDrivers)
	g.probeOf = make([]int, g.nDrivers)

	// Driver d gets a private region/var and a dedicated probe compute task
	// with probability ~1/2: the probe shares only the private location, so
	// waiting on it while holding the private effects exercises effect
	// transfer when blocked (§3.1.4) without risking conflict-wait cycles.
	probes := 0
	for d := 0; d < g.nDrivers; d++ {
		g.privateVar[d], g.probeOf[d] = -1, -1
		if g.rnd.Intn(2) == 0 {
			region := fmt.Sprintf("P%d", d)
			s.Regions = append(s.Regions, region)
			g.privateVar[d] = len(s.Vars)
			s.Vars = append(s.Vars, VarSpec{Name: fmt.Sprintf("pv%d", d), Path: []string{region}})
			probes++
		}
	}

	total := g.nDrivers + nCompute + probes
	g.ownerOf = make([]int, total)
	g.consEff = make([]effect.Set, total)
	for i := range g.ownerOf {
		g.ownerOf[i] = -1
	}
	for i := 0; i < total; i++ {
		t := &TaskSpec{HasParam: i != 0}
		switch {
		case i == 0:
			t.Name, t.Kind = "main", TaskDriver
		case i < g.nDrivers:
			t.Name, t.Kind = fmt.Sprintf("drv%d", i), TaskDriver
		default:
			t.Name, t.Kind = fmt.Sprintf("cmp%d", i), TaskCompute
		}
		s.Tasks = append(s.Tasks, t)
	}
	// Probe tasks take the highest compute indices.
	next := total - 1
	for d := g.nDrivers - 1; d >= 0; d-- {
		if g.privateVar[d] >= 0 {
			g.probeOf[d] = next
			g.ownerOf[next] = d
			s.Tasks[next].Name = fmt.Sprintf("prb%d", next)
			next--
		}
	}
}

func (g *gen) sharedPath() []string {
	path := []string{g.spec.Regions[g.rnd.Intn(len(g.spec.Regions))]}
	if g.rnd.Intn(3) == 0 {
		path = append(path, g.spec.Regions[g.rnd.Intn(len(g.spec.Regions))])
	}
	return path
}

// locRegion resolves a Loc to its conservative RPL (param indices → [?]);
// the shared resolution lives on Spec so the fault executor can reuse it.
func (g *gen) locRegion(l Loc) rpl.RPL { return g.spec.LocRegion(l) }

// opEffect is the conservative effect of a single access op.
func (g *gen) opEffect(op *Op) effect.Set {
	switch op.Kind {
	case OpInc, OpLoopInc, OpCondInc:
		return effect.NewSet(effect.WriteEff(g.locRegion(op.Loc)))
	case OpRead:
		return effect.NewSet(effect.Read(g.locRegion(op.Loc)))
	case OpSpawn, OpCall:
		return g.consEff[op.Child]
	}
	return effect.Pure
}

// sharedLoc picks a shared scalar or array element, honoring hasParam.
func (g *gen) sharedLoc(hasParam bool) Loc {
	if g.rnd.Intn(3) != 0 || len(g.sharedArrays) == 0 {
		vi := g.sharedVars[g.rnd.Intn(len(g.sharedVars))]
		return Loc{Name: g.spec.Vars[vi].Name}
	}
	ai := g.sharedArrays[g.rnd.Intn(len(g.sharedArrays))]
	arr := g.spec.Arrays[ai]
	l := Loc{Name: arr.Name, IsArray: true}
	if hasParam && g.rnd.Intn(2) == 0 {
		l.IndexFromParam = true
	} else {
		l.Index = g.rnd.Intn(arr.Size)
	}
	return l
}

// accessOp builds an Inc/LoopInc/CondInc/Read on loc.
func (g *gen) accessOp(kind OpKind, loc Loc, hasParam bool) *Op {
	op := &Op{Kind: kind, Loc: loc, Amount: 1 + g.rnd.Intn(5)}
	if hasParam && g.rnd.Intn(4) == 0 {
		op.AmountFromParam = true
	}
	switch kind {
	case OpLoopInc:
		op.Count = 1 + g.rnd.Intn(3)
	case OpCondInc:
		op.CondK = g.rnd.Intn(8)
	}
	return op
}

// childArg picks the argument for a launch/spawn/call.
func (g *gen) childArg(op *Op, hasParam bool) {
	if hasParam && g.rnd.Intn(2) == 0 {
		op.ArgFromParam = true
	} else {
		op.Arg = g.rnd.Intn(8)
	}
}

// computeOps fills the body of compute task ti. Every access, spawn, and
// call must stay non-interfering with the footprint already transferred to
// spawned children: the covering-effect discipline (§3.1.5) otherwise
// rejects the program (joins of not-fully-specified summaries restore no
// coverage statically, so the exclusion lasts to the end of the body).
func (g *gen) computeOps(ti int) {
	t := g.spec.Tasks[ti]
	var own effect.Set
	spawnedFoot := effect.Pure
	var openSpawns []string

	// Probe tasks touch only their driver's private var.
	probeOwner := g.ownerOf[ti]

	pickLoc := func() Loc {
		if probeOwner >= 0 {
			return Loc{Name: g.spec.Vars[g.privateVar[probeOwner]].Name}
		}
		return g.sharedLoc(t.HasParam)
	}

	nOps := 1 + g.rnd.Intn(5)
	if probeOwner >= 0 {
		nOps = 1 + g.rnd.Intn(3)
	}
	for k := 0; k < nOps; k++ {
		roll := g.rnd.Intn(100)
		var op *Op
		switch {
		case roll < 40:
			op = g.accessOp(OpInc, pickLoc(), t.HasParam)
		case roll < 50:
			op = g.accessOp(OpLoopInc, pickLoc(), t.HasParam)
		case roll < 60 && t.HasParam:
			op = g.accessOp(OpCondInc, pickLoc(), t.HasParam)
		case roll < 75:
			op = g.accessOp(OpRead, pickLoc(), t.HasParam)
		case roll < 85 && probeOwner < 0:
			// Spawn a higher-index compute task.
			child := g.pickComputeChild(ti)
			if child < 0 {
				continue
			}
			op = &Op{Kind: OpSpawn, Child: child, Fut: fmt.Sprintf("f%d", k)}
			g.childArg(op, t.HasParam)
		case roll < 93 && probeOwner < 0:
			// Inline call: the callee must create no tasks.
			child := g.pickCallChild(ti)
			if child < 0 {
				continue
			}
			op = &Op{Kind: OpCall, Child: child}
			g.childArg(op, t.HasParam)
		default:
			if len(g.spec.Refs) == 0 {
				continue
			}
			op = &Op{Kind: OpRefUse, Ref: g.spec.Refs[g.rnd.Intn(len(g.spec.Refs))], RefWrite: g.rnd.Intn(2) == 0}
		}
		ce := g.opEffect(op)
		if !ce.NonInterfering(spawnedFoot) {
			continue // would not be covered inside/after the spawn window
		}
		t.Ops = append(t.Ops, op)
		switch op.Kind {
		case OpSpawn:
			spawnedFoot = spawnedFoot.Union(ce)
			own = own.Union(ce)
			openSpawns = append(openSpawns, op.Fut)
			// Join the spawned child after a short window, or leave the
			// implicit end-of-body join to do it.
			if g.rnd.Intn(3) > 0 {
				t.Ops = append(t.Ops, &Op{Kind: OpJoin, Fut: op.Fut})
				openSpawns = openSpawns[:len(openSpawns)-1]
			}
		case OpCall:
			own = own.Union(ce)
		default:
			own = own.Union(ce)
		}
	}
	for _, fut := range openSpawns {
		if g.rnd.Intn(2) == 0 {
			t.Ops = append(t.Ops, &Op{Kind: OpJoin, Fut: fut})
		}
	}
	g.consEff[ti] = own

	// Leaf compute tasks (pure bodies) may be @Deterministic (§3.3.5).
	leaf := true
	for _, op := range t.Ops {
		if op.createsChild() || op.Kind == OpRefUse {
			leaf = false
		}
	}
	if leaf && g.rnd.Intn(4) == 0 {
		t.Deterministic = true
	}
}

// pickComputeChild picks a spawnable compute task with index > ti. Probe
// tasks are never candidates: a compute task that reached a probe would
// carry the probe's private effect in its summary, giving it a conflict
// edge into a foreign driver that blocks while holding that effect — which
// can close a mixed wait/conflict cycle (deadlock) through the driver's own
// wait chain. Keeping private regions exclusive to each driver and its
// probe decouples compute-task conflicts from blocked drivers entirely.
func (g *gen) pickComputeChild(ti int) int {
	var cands []int
	for j := ti + 1; j < len(g.spec.Tasks); j++ {
		if g.spec.Tasks[j].Kind == TaskCompute && g.ownerOf[j] < 0 {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[g.rnd.Intn(len(cands))]
}

// pickCallChild picks an inline-callable compute task (> ti, creates no
// tasks, not a probe — see pickComputeChild).
func (g *gen) pickCallChild(ti int) int {
	var cands []int
	for j := ti + 1; j < len(g.spec.Tasks); j++ {
		if g.spec.Tasks[j].Kind != TaskCompute || g.ownerOf[j] >= 0 {
			continue
		}
		ok := true
		for _, op := range g.spec.Tasks[j].Ops {
			if op.Kind == OpLaunch || op.Kind == OpSpawn || op.Kind == OpWait || op.Kind == OpJoin {
				ok = false
				break
			}
		}
		if ok {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[g.rnd.Intn(len(cands))]
}

// driverOps fills the body of driver ti: launches with immediate, deferred,
// and absent waits, plus accesses confined to the driver's private var.
// Drivers never touch shared state: a task that blocks while holding
// contested effects could close a conflict-wait cycle (deadlock), and
// deadlock would be schedule-dependent — fatal for a differential oracle.
func (g *gen) driverOps(ti int) {
	t := g.spec.Tasks[ti]
	priv := -1
	if ti < len(g.privateVar) {
		priv = g.privateVar[ti]
	}
	var pending []string
	futN := 0

	launch := func(child int) {
		op := &Op{Kind: OpLaunch, Child: child, Fut: fmt.Sprintf("f%d", futN)}
		futN++
		g.childArg(op, t.HasParam)
		t.Ops = append(t.Ops, op)
		switch g.rnd.Intn(3) {
		case 0: // immediate wait
			t.Ops = append(t.Ops, &Op{Kind: OpWait, Fut: op.Fut})
		case 1: // deferred wait
			pending = append(pending, op.Fut)
		default: // fire and forget (or flushed at the end)
			if g.rnd.Intn(2) == 0 {
				pending = append(pending, op.Fut)
			}
		}
	}

	nOps := 2 + g.rnd.Intn(4)
	if ti == 0 {
		nOps = 3 + g.rnd.Intn(3)
	}
	for k := 0; k < nOps; k++ {
		if len(pending) > 0 && g.rnd.Intn(3) == 0 {
			t.Ops = append(t.Ops, &Op{Kind: OpWait, Fut: pending[0]})
			pending = pending[1:]
			continue
		}
		roll := g.rnd.Intn(100)
		switch {
		case roll < 55:
			child := g.pickLaunchChild(ti)
			if child >= 0 {
				launch(child)
			}
		case roll < 75 && priv >= 0:
			kind := OpInc
			if t.HasParam && g.rnd.Intn(4) == 0 {
				kind = OpCondInc
			} else if g.rnd.Intn(4) == 0 {
				kind = OpRead
			}
			op := g.accessOp(kind, Loc{Name: g.spec.Vars[priv].Name}, t.HasParam)
			t.Ops = append(t.Ops, op)
		case roll < 85 && len(g.spec.Refs) > 0:
			t.Ops = append(t.Ops, &Op{Kind: OpRefUse, Ref: g.spec.Refs[g.rnd.Intn(len(g.spec.Refs))], RefWrite: g.rnd.Intn(2) == 0})
		default:
			child := g.pickLaunchChild(ti)
			if child >= 0 {
				launch(child)
			}
		}
	}
	// Flush (some) deferred waits; the rest run fire-and-forget and are
	// drained by runtime shutdown / interpreter quiescence.
	for _, fut := range pending {
		if g.rnd.Intn(2) == 0 {
			t.Ops = append(t.Ops, &Op{Kind: OpWait, Fut: fut})
		}
	}

	// A probed driver must WRITE its private var, not merely read it: two
	// instances of the same driver share the private region, and with a
	// read-only summary they run concurrently — each can then block on its
	// own private-writing probe that the other instance's read effect keeps
	// from being admitted (the transfer rule only ignores conflicts with
	// tasks blocked on the probe), a real cross-instance deadlock. A write
	// in the summary serializes instances of the driver instead.
	if priv >= 0 {
		hasWrite := false
		for _, op := range t.Ops {
			switch op.Kind {
			case OpInc, OpLoopInc, OpCondInc:
				hasWrite = true
			}
		}
		if !hasWrite {
			t.Ops = append([]*Op{{Kind: OpInc, Loc: Loc{Name: g.spec.Vars[priv].Name}, Amount: 1}}, t.Ops...)
		}
	}

	// Conservative summary: private accesses only (launches transfer
	// nothing into the driver's summary).
	var own effect.Set
	for _, op := range t.Ops {
		switch op.Kind {
		case OpInc, OpLoopInc, OpCondInc, OpRead:
			own = own.Union(g.opEffect(op))
		}
	}
	g.consEff[ti] = own

	// main must drive something.
	if ti == 0 {
		hasLaunch := false
		for _, op := range t.Ops {
			if op.Kind == OpLaunch {
				hasLaunch = true
			}
		}
		if !hasLaunch {
			if child := g.pickLaunchChild(0); child >= 0 {
				launch(child)
			}
		}
	}
}

// pickLaunchChild picks an executeLater target for driver ti: a
// higher-index driver, a regular compute task, or the driver's own probe.
// Probes of other drivers are excluded — a foreign launch would create
// private-effect conflicts with a driver that blocks while holding them.
func (g *gen) pickLaunchChild(ti int) int {
	var cands []int
	for j := ti + 1; j < len(g.spec.Tasks); j++ {
		if owner := g.ownerOf[j]; owner >= 0 && owner != ti {
			continue
		}
		cands = append(cands, j)
	}
	if len(cands) == 0 {
		return -1
	}
	// Weight the driver's own probe so the §3.1.4 transfer path is hit.
	if ti < len(g.probeOf) && g.probeOf[ti] >= 0 && g.rnd.Intn(3) == 0 {
		return g.probeOf[ti]
	}
	return cands[g.rnd.Intn(len(cands))]
}

// assignWidening marks tasks whose declared summaries Render may widen
// with wildcards. Spawn and call targets are excluded: their declared
// summaries must stay inside the parent's (checker and runtime covering
// checks use the declaration, not the body).
func (g *gen) assignWidening() {
	excluded := map[int]bool{}
	for _, t := range g.spec.Tasks {
		for _, op := range t.Ops {
			if op.Kind == OpSpawn || op.Kind == OpCall {
				excluded[op.Child] = true
			}
		}
	}
	for i, t := range g.spec.Tasks {
		if i == 0 || excluded[i] {
			continue
		}
		if g.rnd.Intn(3) == 0 {
			t.WidenSeed = g.rnd.Uint64() | 1
		}
	}
}

// trim deterministically drops child-creating ops until the instance count
// is bounded.
func (g *gen) trim() {
	for g.spec.Instances() > maxInstances {
		ti, oj := -1, -1
		for i, t := range g.spec.Tasks {
			for j, op := range t.Ops {
				if op.createsChild() {
					ti, oj = i, j
				}
			}
		}
		if ti < 0 {
			return
		}
		g.spec.DropOp(ti, oj)
	}
}
