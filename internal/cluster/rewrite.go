package cluster

import (
	"fmt"

	"twe/internal/effect"
	"twe/internal/rpl"
)

// RewriteSession maps a client's declared effect onto one upstream
// connection's session namespace: every Session:[clientSid]... region
// becomes Session:[upstreamSid]... with its tail intact, and any region
// naming a *different* session id is rejected — a client may only
// declare its own scratch subtree, clustered or not (the single-node
// server enforces the same thing through Covers, since its required
// sets name the connection's own sid).
//
// All other regions pass through untouched: Shard:[k] means the same
// store region on whichever member owns it.
func RewriteSession(set effect.Set, clientSid, upstreamSid int) (effect.Set, error) {
	effs := make([]effect.Effect, 0, set.Len())
	for i := 0; i < set.Len(); i++ {
		e := set.At(i)
		r := e.Region
		if r.Len() >= 1 && r.Elem(0).Kind == rpl.Name && r.Elem(0).Name == "Session" {
			if r.Len() < 2 {
				return effect.Set{}, fmt.Errorf("cluster: bare Session region %q spans all sessions", r)
			}
			second := r.Elem(1)
			if second.Kind != rpl.Index {
				return effect.Set{}, fmt.Errorf("cluster: session region %q does not name a concrete session", r)
			}
			if second.Index != clientSid {
				return effect.Set{}, fmt.Errorf("cluster: session region %q is not yours (session %d)", r, clientSid)
			}
			elems := append([]rpl.Elem{rpl.N("Session"), rpl.Idx(upstreamSid)}, r.Elems()[2:]...)
			r = rpl.New(elems...)
			if e.Write {
				e = effect.WriteEff(r)
			} else {
				e = effect.Read(r)
			}
		}
		effs = append(effs, e)
	}
	return effect.NewSet(effs...), nil
}
