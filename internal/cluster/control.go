package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"twe/internal/svc"
)

// MemberStatus is one member's row in the control-plane snapshot:
// identity and health from the prober, the router's ledger for the
// member, and the member's own wire stats fetched at snapshot time.
type MemberStatus struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	Debug string `json:"debug,omitempty"`

	Healthy         bool   `json:"healthy"`
	ProbeErr        string `json:"probe_err,omitempty"`
	ReportedShardID int64  `json:"reported_shard_id"` // -2 = never probed
	HeldPrepares    int64  `json:"held_prepares"`
	Inflight        int64  `json:"inflight"`

	// Router-side ledger (see shardCounters) and latency digests.
	Fwd   int64 `json:"fwd"`
	Prep  int64 `json:"prep"`
	Srv   int64 `json:"srv"`
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`

	// The member's own counters, fetched over the wire at snapshot time
	// (nil if the member was unreachable).
	Stats *svc.StatsBody `json:"stats,omitempty"`
}

// Snapshot is the /cluster payload: the full fleet view the oracles
// check (bench.go FleetCheck) and operators read.
type Snapshot struct {
	CrossLane string         `json:"cross_lane"`
	Members   []MemberStatus `json:"members"`
	Router    svc.StatsBody  `json:"router"`
}

// Snapshot assembles the fleet view, dialing each member for its live
// stats (stats ops are inline control ops member-side, so snapshots
// never perturb the data-op accounting).
func (r *Router) Snapshot() Snapshot {
	snap := Snapshot{CrossLane: r.cfg.CrossLane, Router: r.Stats()}
	for i := 0; i < r.n; i++ {
		ms := MemberStatus{
			ID:              i,
			Addr:            r.cfg.Shards[i],
			Healthy:         r.health[i].healthy.Load(),
			ReportedShardID: r.health[i].shardID.Load(),
			HeldPrepares:    r.health[i].heldPrepares.Load(),
			Inflight:        r.health[i].inflight.Load(),
			Fwd:             r.perShard[i].Fwd.Load(),
			Prep:            r.perShard[i].Prep.Load(),
			Srv:             r.perShard[i].Srv.Load(),
			P50NS:           r.lat[i].Quantile(0.50),
			P99NS:           r.lat[i].Quantile(0.99),
		}
		if len(r.cfg.ShardDebug) > 0 {
			ms.Debug = r.cfg.ShardDebug[i]
		}
		if e := r.health[i].lastErr.Load(); e != nil {
			ms.ProbeErr = *e
		}
		if st, err := r.memberStats(i); err == nil {
			ms.Stats = st
		} else {
			ms.ProbeErr = err.Error()
		}
		snap.Members = append(snap.Members, ms)
	}
	return snap
}

// memberStats fetches member i's wire stats over a short-lived v1
// connection (snapshots are rare; keeping no idle conns means drain
// audits never see a phantom session beyond the snapshot instant).
func (r *Router) memberStats(i int) (*svc.StatsBody, error) {
	c, err := svc.Dial(r.cfg.Shards[i])
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Stats()
}

// Handler serves the control plane:
//
//	GET /cluster  — JSON Snapshot
//	GET /healthz  — 200 when every member's last probe succeeded (503
//	                otherwise; always 200 when no debug URLs are
//	                configured, since there is nothing to probe)
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if len(r.cfg.ShardDebug) == 0 {
			fmt.Fprintln(w, "ok (unprobed)")
			return
		}
		for i := 0; i < r.n; i++ {
			if !r.health[i].healthy.Load() {
				msg := "probe pending"
				if e := r.health[i].lastErr.Load(); e != nil {
					msg = *e
				}
				http.Error(w, fmt.Sprintf("member %d unhealthy: %s", i, msg), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// probeLoop polls each member's /debug/twe every ProbeEvery, verifying
// the member's stable shard id matches its fleet index (a swapped or
// stale address is a routing hazard, not a liveness blip) and recording
// the held-prepare and in-flight gauges for /cluster.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	if len(r.cfg.ShardDebug) == 0 {
		return
	}
	client := &http.Client{Timeout: 2 * time.Second}
	tick := time.NewTicker(r.cfg.ProbeEvery)
	defer tick.Stop()
	probe := func() {
		for i := 0; i < r.n; i++ {
			snap, err := fetchDebug(client, r.cfg.ShardDebug[i])
			h := &r.health[i]
			if err != nil {
				msg := err.Error()
				h.lastErr.Store(&msg)
				h.healthy.Store(false)
				continue
			}
			h.shardID.Store(int64(snap.ShardID))
			h.heldPrepares.Store(int64(snap.HeldPrepares))
			h.inflight.Store(snap.Inflight)
			if snap.ShardID != i {
				msg := fmt.Sprintf("reports shard id %d, want %d", snap.ShardID, i)
				h.lastErr.Store(&msg)
				h.healthy.Store(false)
				continue
			}
			h.lastErr.Store(nil)
			h.healthy.Store(true)
		}
	}
	probe()
	for {
		select {
		case <-r.probeStop:
			return
		case <-tick.C:
			probe()
		}
	}
}

func fetchDebug(client *http.Client, base string) (*svc.DebugSnapshot, error) {
	resp, err := client.Get(base + "/debug/twe")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/debug/twe: %s", base, resp.Status)
	}
	var snap svc.DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
