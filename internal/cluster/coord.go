package cluster

import (
	"fmt"
	"sync"

	"twe/internal/effect"
	"twe/internal/svc"
)

// coordinator runs the cross-shard lanes (DESIGN.md §16). Both lanes are
// fully serialized behind mu — one cross-shard op in the system at a
// time — which is what makes the two-phase lane trivially deadlock-free:
// holds from two concurrent coordinator rounds can never wait on each
// other because there is never more than one round. Single-shard traffic
// keeps flowing throughout (2pc lane); the holds themselves provide the
// atomicity:
//
//	prepare (ascending member order) → ack'd StatusPrepared per member
//	→ commit all → combine outcomes
//
// A prepared ack means the hold's body started, i.e. its effects are
// held on that member: every conflicting single-shard op admitted before
// the hold has finished, every one admitted after waits for release. By
// the time any commit executes, holds exist on *all* touched members, so
// the committed bodies read/write a consistent cut. On any prepare
// failure every already-prepared hold is aborted — release on abort is
// the shard-side guarantee (svc prepare holds resolve on abort, expiry,
// or disconnect).
//
// The serial lane instead quiesces the router (flow write-lock): no
// forwarded op is outstanding anywhere while the pieces run one by one,
// trading all concurrency for protocol simplicity.
type coordinator struct {
	r  *Router
	mu sync.Mutex

	conns  []*svc.Client // per member, protocol v1, lazily dialed
	nextID uint64
}

func newCoordinator(r *Router) *coordinator {
	return &coordinator{r: r, conns: make([]*svc.Client, r.n)}
}

func (co *coordinator) conn(k int) (*svc.Client, error) {
	if c := co.conns[k]; c != nil {
		return c, nil
	}
	// The two-phase ops are v1-only wire ops; the coordinator keeps one
	// dedicated JSON connection per member.
	c, err := svc.DialProto(co.r.cfg.Shards[k], svc.ProtoV1)
	if err != nil {
		return nil, err
	}
	co.conns[k] = c
	return c, nil
}

// dropConn discards member k's coordinator connection after a transport
// error; the next round re-dials.
func (co *coordinator) dropConn(k int) {
	if c := co.conns[k]; c != nil {
		c.Close()
		co.conns[k] = nil
	}
}

func (co *coordinator) close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for k, c := range co.conns {
		if c != nil {
			c.Close()
			co.conns[k] = nil
		}
	}
}

// crossOp admits one cross-shard or global data op over every member in
// the decision's mask. The response carries the combined outcome: a
// scan's value is the sum of every member's piece; other ops take the
// owner member's value. The caller (the session reader) has already
// barriered its own outstanding single-shard ops, so program order per
// client holds.
func (r *Router) crossOp(clientSid int, req *svc.Request, declared effect.Set, dec Decision) *svc.Response {
	owner := OwnerOfKey(req.Key, r.storeShards, r.n)
	scanAll := req.Op == svc.OpScan
	if !scanAll && dec.Mask&(1<<uint(owner)) == 0 {
		// A non-scan op's body runs only on its key's owner member. If the
		// declared effect touches several members but none of them is the
		// owner, every leg would be a pure hold: the op would execute
		// nowhere yet report StatusOK — and no member's coverage check
		// would fire, because the owner (the one whose Covers would
		// reject) never sees the request. A single node rejects exactly
		// this shape via Covers; reject it here for the same reason.
		return &svc.Response{Status: svc.StatusRejected,
			Err: fmt.Sprintf("declared effect does not cover key %d's member %d", req.Key, owner)}
	}
	if r.cfg.CrossLane == "serial" {
		return r.coord.runSerial(clientSid, req, declared, dec.Mask, owner, scanAll)
	}
	return r.coord.runTwoPhase(clientSid, req, declared, dec.Mask, owner, scanAll)
}

// rewriteFor maps the client's declared effect into one coordinator
// connection's session namespace.
func rewriteFor(declared effect.Set, clientSid int, c *svc.Client) (string, error) {
	rw, err := RewriteSession(declared, clientSid, c.SID)
	if err != nil {
		return "", err
	}
	return rw.String(), nil
}

type leg struct {
	shard  int
	prepID uint64
	c      *svc.Client
}

func (co *coordinator) runTwoPhase(clientSid int, req *svc.Request, declared effect.Set, mask uint64, owner int, scanAll bool) *svc.Response {
	co.mu.Lock()
	defer co.mu.Unlock()
	fail := func(status, format string, args ...any) *svc.Response {
		return &svc.Response{Status: status, Err: fmt.Sprintf(format, args...)}
	}
	var legs []leg
	abortAll := func() {
		for _, l := range legs {
			co.nextID++
			if _, err := l.c.Do(&svc.Request{ID: co.nextID, Op: svc.OpAbort, Target: l.prepID}); err != nil {
				co.dropConn(l.shard)
			}
		}
	}
	// Phase 1: prepare a hold on every touched member, ascending member
	// order, each ack'd before the next goes out. The sub op (the body a
	// commit will run) goes to the owner — or to every member for a scan,
	// whose pieces sum; the rest hold pure.
	for k := 0; k < co.r.n; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		c, err := co.conn(k)
		if err != nil {
			abortAll()
			return fail(svc.StatusError, "member %d unavailable: %v", k, err)
		}
		eff, err := rewriteFor(declared, clientSid, c)
		if err != nil {
			abortAll()
			return fail(svc.StatusRejected, "%v", err)
		}
		sub := ""
		if scanAll || k == owner {
			sub = req.Op
		}
		co.nextID++
		prepID := co.nextID
		co.r.perShard[k].Prep.Add(1)
		resp, err := c.Do(&svc.Request{ID: prepID, Op: svc.OpPrepare, Sub: sub,
			Key: req.Key, Val: req.Val, Eff: eff})
		if err != nil {
			co.dropConn(k)
			abortAll()
			return fail(svc.StatusError, "member %d prepare failed: %v", k, err)
		}
		if resp.Status != svc.StatusPrepared {
			// The member refused (busy/rejected) or the hold resolved
			// before starting; relay its verdict after releasing the rest.
			abortAll()
			return &svc.Response{Status: resp.Status, Err: resp.Err}
		}
		legs = append(legs, leg{shard: k, prepID: prepID, c: c})
	}
	if len(legs) == 0 {
		return fail(svc.StatusRejected, "cross-shard op touches no member")
	}
	// Phase 2: every member holds; commit them all and combine outcomes.
	out := &svc.Response{Status: svc.StatusOK}
	var sum, ownerVal int64
	for _, l := range legs {
		co.nextID++
		resp, err := l.c.Do(&svc.Request{ID: co.nextID, Op: svc.OpCommit, Target: l.prepID})
		if err != nil {
			co.dropConn(l.shard)
			out = fail(svc.StatusError, "member %d commit failed: %v", l.shard, err)
			continue
		}
		if resp.Status == svc.StatusOK {
			co.r.perShard[l.shard].Srv.Add(1)
			sum += resp.Val
			if l.shard == owner {
				ownerVal = resp.Val
			}
			continue
		}
		// A hold's body failed (shed on deadline, dyneff error, ...):
		// the combined op reports the first failure.
		if out.Status == svc.StatusOK {
			out = &svc.Response{Status: resp.Status, Err: resp.Err}
		}
	}
	if out.Status == svc.StatusOK {
		if scanAll {
			out.Val = sum
		} else {
			out.Val = ownerVal
		}
	}
	return out
}

// runSerial is the stop-the-world fallback lane: quiesce every forwarded
// op (flow write-lock), then run the pieces one by one as plain data ops
// on the coordinator connections. Nothing else is in flight anywhere in
// the fleet while it runs, which is the whole atomicity argument.
func (co *coordinator) runSerial(clientSid int, req *svc.Request, declared effect.Set, mask uint64, owner int, scanAll bool) *svc.Response {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.r.flow.Lock()
	defer co.r.flow.Unlock()
	out := &svc.Response{Status: svc.StatusOK}
	var sum, ownerVal int64
	for k := 0; k < co.r.n; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		if !scanAll && k != owner {
			continue // nothing to run here, and nothing to hold: the world is stopped
		}
		c, err := co.conn(k)
		if err != nil {
			return &svc.Response{Status: svc.StatusError, Err: fmt.Sprintf("member %d unavailable: %v", k, err)}
		}
		eff, err := rewriteFor(declared, clientSid, c)
		if err != nil {
			return &svc.Response{Status: svc.StatusRejected, Err: err.Error()}
		}
		co.nextID++
		co.r.perShard[k].Fwd.Add(1)
		resp, err := c.Do(&svc.Request{ID: co.nextID, Op: req.Op, Key: req.Key, Val: req.Val, Eff: eff})
		if err != nil {
			co.dropConn(k)
			return &svc.Response{Status: svc.StatusError, Err: fmt.Sprintf("member %d: %v", k, err)}
		}
		if resp.Status != svc.StatusOK {
			if out.Status == svc.StatusOK {
				out = &svc.Response{Status: resp.Status, Err: resp.Err}
			}
			continue
		}
		co.r.perShard[k].Srv.Add(1)
		sum += resp.Val
		if k == owner {
			ownerVal = resp.Val
		}
	}
	if out.Status == svc.StatusOK {
		if scanAll {
			out.Val = sum
		} else {
			out.Val = ownerVal
		}
	}
	return out
}
