package cluster

import (
	"strings"
	"testing"

	"twe/internal/effect"
	"twe/internal/rpl"
	"twe/internal/svc"
)

func TestRewriteSessionMapsNamespace(t *testing.T) {
	set, err := effect.Parse(svc.PutEffect(8, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RewriteSession(set, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, err := effect.Parse(svc.PutEffect(8, 5, 17))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatalf("rewrite: got %q, want %q", out, want)
	}
}

func TestRewriteSessionPreservesTailAndMode(t *testing.T) {
	set, err := effect.Parse("reads Root:Session:[2]:*, writes Root:Shard:[1]")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RewriteSession(set, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := effect.Parse("reads Root:Session:[9]:*, writes Root:Shard:[1]")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatalf("rewrite: got %q, want %q", out, want)
	}
}

func TestRewriteSessionRejectsForeign(t *testing.T) {
	cases := []struct {
		eff  string
		frag string
	}{
		{"writes Root:Session:[4]", "not yours"}, // someone else's session
		{"writes Root:Session", "spans"},         // bare Session subtree
		{"writes Root:Session:*", "concrete"},    // wildcard session id
		{"writes Root:Session:[?]", "concrete"},  // any-index session id
	}
	for _, tc := range cases {
		set, err := effect.Parse(tc.eff)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.eff, err)
		}
		if _, err := RewriteSession(set, 3, 17); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%q: err %v, want containing %q", tc.eff, err, tc.frag)
		}
	}
}

func TestRewriteSessionLeavesOthersAlone(t *testing.T) {
	set := effect.NewSet(
		effect.WriteEff(rpl.New(rpl.N("Shard"), rpl.Idx(2))),
		effect.Read(rpl.New(rpl.N("Shard"), rpl.Any)),
	)
	out, err := RewriteSession(set, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(set) {
		t.Fatalf("session-free set changed: got %q, want %q", out, set)
	}
}
