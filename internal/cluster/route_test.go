package cluster

import (
	"math/rand"
	"testing"

	"twe/internal/effect"
	"twe/internal/rpl"
	"twe/internal/svc"
)

// --- brute-force oracle -------------------------------------------------
//
// A region denotes a set of fully specified RPLs (wildcards as
// patterns). The oracle enumerates every concrete path over a small
// finite alphabet and bounded depth and asks rpl.Included — no reuse of
// the symbolic Disjoint the properties are judging.

const (
	bruteShards = 6 // concrete store shards in the enumeration
	bruteDepth  = 3
)

func brutePaths() []rpl.RPL {
	elems := []rpl.Elem{rpl.N("Shard"), rpl.N("Session"), rpl.N("Data")}
	for i := 0; i < bruteShards; i++ {
		elems = append(elems, rpl.Idx(i))
	}
	var paths []rpl.RPL
	var walk func(prefix []rpl.Elem)
	walk = func(prefix []rpl.Elem) {
		paths = append(paths, rpl.New(prefix...))
		if len(prefix) == bruteDepth {
			return
		}
		for _, e := range elems {
			walk(append(append([]rpl.Elem{}, prefix...), e))
		}
	}
	walk(nil)
	return paths
}

// bruteOverlap: do two regions denote a common concrete path?
func bruteOverlap(paths []rpl.RPL, a, b rpl.RPL) bool {
	for _, p := range paths {
		if p.Included(a) && p.Included(b) {
			return true
		}
	}
	return false
}

// bruteMembers: which cluster members' store subtrees does the effect
// set reach? A member j is touched when some region shares a concrete
// path with the subtree of some store shard it owns (Shard:[k]:* for
// k ≡ j mod n), or with the Shard:[k] node itself.
func bruteMembers(paths []rpl.RPL, set effect.Set, n int) map[int]bool {
	touched := map[int]bool{}
	for i := 0; i < set.Len(); i++ {
		r := set.At(i).Region
		for k := 0; k < bruteShards; k++ {
			node := rpl.New(rpl.N("Shard"), rpl.Idx(k))
			sub := rpl.New(rpl.N("Shard"), rpl.Idx(k), rpl.Any)
			if bruteOverlap(paths, r, node) || bruteOverlap(paths, r, sub) {
				touched[k%n] = true
			}
		}
	}
	return touched
}

// stripSessions drops Session-headed regions (the router rewrites those
// into per-upstream namespaces; they carry no placement meaning).
func stripSessions(set effect.Set) []rpl.RPL {
	var out []rpl.RPL
	for i := 0; i < set.Len(); i++ {
		r := set.At(i).Region
		if r.Len() > 0 && r.Elem(0).Kind == rpl.Name && r.Elem(0).Name == "Session" {
			continue
		}
		out = append(out, r)
	}
	return out
}

// randomSet draws a declared-effect set from a grammar covering the
// canonical op shapes plus the adversarial corners Route must be
// conservative about (bare Shard, Root, wildcard heads, foreign names).
func randomSet(rnd *rand.Rand) effect.Set {
	regions := []func() rpl.RPL{
		func() rpl.RPL { return rpl.New(rpl.N("Shard"), rpl.Idx(rnd.Intn(bruteShards))) },
		func() rpl.RPL {
			return rpl.New(rpl.N("Shard"), rpl.Idx(rnd.Intn(bruteShards)), rpl.Idx(rnd.Intn(3)))
		},
		func() rpl.RPL { return rpl.New(rpl.N("Shard"), rpl.Any) },
		func() rpl.RPL { return rpl.New(rpl.N("Shard"), rpl.AnyIdx) },
		func() rpl.RPL { return rpl.New(rpl.N("Session"), rpl.Idx(rnd.Intn(4))) },
		func() rpl.RPL { return rpl.New(rpl.N("Session"), rpl.Idx(rnd.Intn(4)), rpl.Any) },
		func() rpl.RPL { return rpl.New(rpl.N("Shard")) },
		func() rpl.RPL { return rpl.Root },
		func() rpl.RPL { return rpl.New(rpl.N("Data"), rpl.Idx(rnd.Intn(3))) },
		func() rpl.RPL { return rpl.New(rpl.Any) },
	}
	k := 1 + rnd.Intn(3)
	effs := make([]effect.Effect, 0, k)
	for i := 0; i < k; i++ {
		r := regions[rnd.Intn(len(regions))]()
		if rnd.Intn(2) == 0 {
			effs = append(effs, effect.Read(r))
		} else {
			effs = append(effs, effect.WriteEff(r))
		}
	}
	return effect.NewSet(effs...)
}

// TestRouteSeparation: the load-bearing property of the partition —
// two effects routed to *different single members* are disjoint on the
// non-session subtree, checked symbolically (rpl.Disjoint) and against
// the brute-force concrete-path oracle.
func TestRouteSeparation(t *testing.T) {
	paths := brutePaths()
	rnd := rand.New(rand.NewSource(7))
	for n := 1; n <= 4; n++ {
		for trial := 0; trial < 400; trial++ {
			a, b := randomSet(rnd), randomSet(rnd)
			da, db := Route(a, n), Route(b, n)
			if da.Kind != KindShard || db.Kind != KindShard || da.Shard == db.Shard {
				continue
			}
			for _, ra := range stripSessions(a) {
				for _, rb := range stripSessions(b) {
					if !ra.Disjoint(rb) {
						t.Fatalf("n=%d: %q→%d and %q→%d but regions %q / %q not Disjoint",
							n, a, da.Shard, b, db.Shard, ra, rb)
					}
					if bruteOverlap(paths, ra, rb) {
						t.Fatalf("n=%d: %q→%d and %q→%d but regions %q / %q share a concrete path",
							n, a, da.Shard, b, db.Shard, ra, rb)
					}
				}
			}
		}
	}
}

// TestRouteConservative: Route never under-routes — the brute-force
// touched-member set is always contained in what the decision admits.
// Effects reaching several members must land in the cross or global
// lane, never on a single member.
func TestRouteConservative(t *testing.T) {
	paths := brutePaths()
	rnd := rand.New(rand.NewSource(11))
	for n := 1; n <= 4; n++ {
		for trial := 0; trial < 400; trial++ {
			set := randomSet(rnd)
			dec := Route(set, n)
			touched := bruteMembers(paths, set, n)
			switch dec.Kind {
			case KindNone:
				if len(touched) != 0 {
					t.Fatalf("n=%d: %q routed none but touches members %v", n, set, touched)
				}
			case KindShard:
				for j := range touched {
					if j != dec.Shard {
						t.Fatalf("n=%d: %q routed to member %d but touches member %d", n, set, dec.Shard, j)
					}
				}
			default: // Cross or Global: mask must cover every touched member
				for j := range touched {
					if dec.Mask&(1<<uint(j)) == 0 {
						t.Fatalf("n=%d: %q mask %b misses touched member %d", n, set, dec.Mask, j)
					}
				}
			}
		}
	}
}

// TestRouteCanonicalOps pins the canonical client effects to their
// lanes: puts/gets go to the key's owner, adds are placement-free,
// scans are cross-shard on any fleet bigger than one member.
func TestRouteCanonicalOps(t *testing.T) {
	const storeShards, sid = 8, 3
	parse := func(s string) effect.Set {
		set, err := effect.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return set
	}
	for n := 1; n <= 4; n++ {
		for key := 0; key < 16; key++ {
			owner := (key % storeShards) % n
			for _, eff := range []string{
				svc.PutEffect(storeShards, key, sid),
				svc.GetEffect(storeShards, key, sid),
			} {
				dec := Route(parse(eff), n)
				if dec.Kind != KindShard || dec.Shard != owner {
					t.Fatalf("n=%d key=%d: %q routed %v/%d, want shard %d", n, key, eff, dec.Kind, dec.Shard, owner)
				}
			}
		}
		if dec := Route(parse(svc.AddEffect(sid)), n); dec.Kind != KindNone {
			t.Fatalf("n=%d: add effect routed %v, want none", n, dec.Kind)
		}
		dec := Route(parse(svc.ScanEffect(sid)), n)
		if n == 1 {
			if dec.Kind != KindShard || dec.Shard != 0 {
				t.Fatalf("n=1: scan routed %v/%d, want shard 0", dec.Kind, dec.Shard)
			}
		} else if dec.Kind != KindCross || dec.Mask != fullMask(n) {
			t.Fatalf("n=%d: scan routed %v mask %b, want cross full mask", n, dec.Kind, dec.Mask)
		}
	}
}

// TestRouteGlobalCorners pins the conservative corners to the global lane.
func TestRouteGlobalCorners(t *testing.T) {
	cases := []effect.Set{
		effect.NewSet(effect.WriteEff(rpl.Root)),
		effect.NewSet(effect.WriteEff(rpl.New(rpl.N("Shard")))),
		effect.NewSet(effect.WriteEff(rpl.New(rpl.Any))),
		effect.NewSet(effect.WriteEff(rpl.New(rpl.N("Shard"), rpl.P("k")))),
		effect.NewSet(effect.Read(rpl.New(rpl.N("Other"), rpl.Idx(1)))),
		effect.Top,
	}
	for _, set := range cases {
		if dec := Route(set, 3); dec.Kind != KindGlobal {
			t.Fatalf("%q routed %v, want global", set, dec.Kind)
		}
	}
}

// TestOwnerOfKeyAlwaysValid: OwnerOfKey must return a valid member index
// for every key, including negative and oversized ones (Go's % preserves
// sign; the router rejects bad keys before forwarding, but the routing
// function itself must never hand back an out-of-range index).
func TestOwnerOfKeyAlwaysValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 64} {
		for _, shards := range []int{1, 4, 8, 13} {
			for _, key := range []int{-1 << 30, -257, -8, -1, 0, 1, 7, 255, 1 << 30} {
				got := OwnerOfKey(key, shards, n)
				if got < 0 || got >= n {
					t.Fatalf("OwnerOfKey(%d, %d, %d) = %d, out of [0,%d)", key, shards, n, got, n)
				}
			}
		}
	}
	// In-range keys keep the documented placement.
	if got := OwnerOfKey(5, 8, 3); got != (5%8)%3 {
		t.Fatalf("OwnerOfKey(5,8,3) = %d, want %d", got, (5%8)%3)
	}
}
