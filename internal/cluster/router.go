package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"twe/internal/effect"
	"twe/internal/svc"
)

// Config shapes a Router.
type Config struct {
	// Shards lists the member wire addresses; index == member id. The
	// fleet size is len(Shards), at most MaxMembers.
	Shards []string
	// ShardDebug optionally lists the members' debug/metrics HTTP base
	// URLs ("http://host:port"), index-aligned with Shards; when set, the
	// health prober verifies each member's reported shard_id against its
	// index and tracks liveness for /healthz.
	ShardDebug []string
	// CrossLane picks the cross-shard admission lane: "2pc" (default —
	// two-phase prepare/commit holds on every touched member) or "serial"
	// (stop-the-world: quiesce all forwarding, run the pieces serially).
	CrossLane string
	// ProbeEvery is the health-probe period (default 500ms; needs
	// ShardDebug).
	ProbeEvery time.Duration
	// EffCacheSize bounds the router's effect-parse memo (default 4096).
	EffCacheSize int
}

func (c Config) withDefaults() Config {
	if c.CrossLane == "" {
		c.CrossLane = "2pc"
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 500 * time.Millisecond
	}
	if c.EffCacheSize <= 0 {
		c.EffCacheSize = 4096
	}
	return c
}

// shardCounters is the router's per-member ledger, the left-hand side of
// the fleet accounting identity the oracle checks (bench.go): at idle
// with no faults, member i's own Requests counter equals Fwd+Prep and
// its Served equals Srv — every op the shard accounted for was put there
// by this router, exactly once.
type shardCounters struct {
	Fwd  atomic.Int64 // data ops forwarded directly (owner lane + serial lane)
	Prep atomic.Int64 // prepare ops issued by the coordinator
	Srv  atomic.Int64 // served outcomes observed from this member
}

// shardLat collects per-member request latencies router-side (forward →
// response matched) for the per-shard p99 in BENCH_cluster.json.
type shardLat struct {
	mu      sync.Mutex
	samples []int64
}

const maxLatSamples = 1 << 20

func (l *shardLat) observe(ns int64) {
	l.mu.Lock()
	if len(l.samples) < maxLatSamples {
		l.samples = append(l.samples, ns)
	}
	l.mu.Unlock()
}

// Quantile returns the q-quantile of the collected samples (0 when none).
func (l *shardLat) Quantile(q float64) int64 {
	l.mu.Lock()
	s := append([]int64(nil), l.samples...)
	l.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

// Router terminates client connections speaking both wire protocols and
// forwards each request to the member its declared effect routes to.
// It keeps the single-node service contract client-side: per-connection
// pipelined in-order responses, the same status vocabulary, a stats op
// answered from the router's own client-facing accounting (so the
// twe-load oracles run against a cluster unchanged), and effect-checked
// admission — on the members, by the same runtime as ever.
type Router struct {
	cfg   Config
	n     int
	cache *svc.EffectCache
	coord *coordinator

	// Geometry learned from the members' hellos (all must agree).
	sched       string
	storeShards int
	keys        int

	m        svc.Metrics // client-facing accounting (stats-op answer)
	perShard []shardCounters
	lat      []shardLat

	// flow is the serial-lane gate: every forwarded op holds it for
	// reading from send to response-matched; the stop-the-world lane
	// takes it for writing, which both quiesces outstanding work and
	// pauses new forwards.
	flow sync.RWMutex

	ln       net.Listener
	draining atomic.Bool
	acceptWg sync.WaitGroup
	sessWg   sync.WaitGroup

	mu      sync.Mutex
	live    map[*rsession]struct{}
	nextSid int

	health    []memberHealth
	probeStop chan struct{}
	probeDone chan struct{}
}

type memberHealth struct {
	healthy      atomic.Bool
	lastErr      atomic.Pointer[string]
	shardID      atomic.Int64 // as reported by /debug/twe; -2 = never probed
	heldPrepares atomic.Int64
	inflight     atomic.Int64
}

// New builds a Router over the given member fleet, dialing every member
// once to learn (and cross-check) the store geometry.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shard addresses")
	}
	if len(cfg.Shards) > MaxMembers {
		return nil, fmt.Errorf("cluster: %d members exceeds the %d-member bound", len(cfg.Shards), MaxMembers)
	}
	if cfg.CrossLane != "2pc" && cfg.CrossLane != "serial" {
		return nil, fmt.Errorf("cluster: unknown cross lane %q (want 2pc or serial)", cfg.CrossLane)
	}
	if len(cfg.ShardDebug) != 0 && len(cfg.ShardDebug) != len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: %d debug URLs for %d shards", len(cfg.ShardDebug), len(cfg.Shards))
	}
	r := &Router{
		cfg:       cfg,
		n:         len(cfg.Shards),
		cache:     svc.NewEffectCache(cfg.EffCacheSize),
		perShard:  make([]shardCounters, len(cfg.Shards)),
		lat:       make([]shardLat, len(cfg.Shards)),
		live:      make(map[*rsession]struct{}),
		health:    make([]memberHealth, len(cfg.Shards)),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for i := range r.health {
		r.health[i].shardID.Store(-2)
	}
	for i, addr := range cfg.Shards {
		c, err := svc.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: member %d (%s): %w", i, addr, err)
		}
		sched, shards, keys := c.Sched, c.Shards, c.Keys
		c.Close()
		if i == 0 {
			r.sched, r.storeShards, r.keys = sched, shards, keys
			continue
		}
		if shards != r.storeShards || keys != r.keys {
			return nil, fmt.Errorf("cluster: member %d geometry %d/%d != member 0 geometry %d/%d",
				i, shards, keys, r.storeShards, r.keys)
		}
	}
	r.coord = newCoordinator(r)
	go r.probeLoop()
	return r, nil
}

// Members reports the fleet size.
func (r *Router) Members() int { return r.n }

// Metrics exposes the router's client-facing counters.
func (r *Router) Metrics() *svc.Metrics { return &r.m }

// Serve accepts client connections on ln until Drain closes it.
func (r *Router) Serve(ln net.Listener) {
	r.ln = ln
	r.acceptWg.Add(1)
	defer r.acceptWg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.m.ConnsAccepted.Add(1)
		r.mu.Lock()
		sid := r.nextSid
		r.nextSid++
		sess := newRSession(r, sid, conn)
		r.live[sess] = struct{}{}
		r.mu.Unlock()
		r.sessWg.Add(1)
		go func() {
			defer r.sessWg.Done()
			sess.main()
			r.mu.Lock()
			delete(r.live, sess)
			r.mu.Unlock()
			r.m.ConnsClosed.Add(1)
		}()
	}
}

// Stats assembles the stats-op answer from the router's own accounting;
// field meanings match the single-node StatsBody so the load generator's
// cross-check runs unchanged against a cluster.
func (r *Router) Stats() svc.StatsBody {
	r.mu.Lock()
	sessions := int64(len(r.live))
	r.mu.Unlock()
	hits, misses := r.cache.Stats()
	return svc.StatsBody{
		Sched:         r.sched,
		Shards:        r.storeShards,
		Keys:          r.keys,
		Sessions:      sessions,
		ConnsAccepted: r.m.ConnsAccepted.Load(),
		Disconnects:   r.m.Disconnects.Load(),
		Requests:      r.m.Requests.Load(),
		Served:        r.m.Served.Load(),
		Shed:          r.m.Shed.Load(),
		Busy:          r.m.Busy.Load(),
		Cancelled:     r.m.Cancelled.Load(),
		Rejected:      r.m.Rejected.Load(),
		Errors:        r.m.Errors.Load(),
		ControlOps:    r.m.ControlOps.Load(),
		Batches:       r.m.Batches.Load(),
		BatchedOps:    r.m.BatchedOps.Load(),
		EffHits:       hits,
		EffMisses:     misses,
		Inflight:      r.m.Inflight(),
		InflightPeak:  r.m.InflightPeak(),
		V1Conns:       r.m.V1Conns.Load(),
		V2Conns:       r.m.V2Conns.Load(),
		EffRegs:       r.m.EffRegs.Load(),
	}
}

// Drain stops accepting, wakes every live session's reader (the same
// read-deadline poke twe-serve uses), and waits for sessions to finish
// flushing. The coordinator and probe loops shut down after.
func (r *Router) Drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	r.draining.Store(true)
	if r.ln != nil {
		r.ln.Close()
	}
	r.acceptWg.Wait()
	r.mu.Lock()
	for sess := range r.live {
		sess.conn.SetReadDeadline(time.Now())
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() { r.sessWg.Wait(); close(done) }()
	var drainErr error
	select {
	case <-done:
	case <-time.After(timeout):
		r.mu.Lock()
		n := len(r.live)
		r.mu.Unlock()
		drainErr = fmt.Errorf("cluster: drain timed out after %v (%d session(s) still live)", timeout, n)
	}
	close(r.probeStop)
	<-r.probeDone
	r.coord.close()
	return drainErr
}

// routeMemo caches one declared effect's routing work: the decision and
// the rewritten effect string per member (filled lazily as upstreams
// dial). v1 keys the memo by the effect string, v2 by the connection's
// effect ref (validated against the resolved set, since refs may be
// re-registered). Each rewritten string remembers the upstream session
// id it was computed for: a member re-dial gets a fresh sid, and
// forwarding a stale Session:[oldSid] rewrite would land the op in
// another session's namespace.
type routeMemo struct {
	set       effect.Set
	dec       Decision
	rewritten []string // per member; "" = not yet computed
	rewSID    []int    // upstream sid rewritten[k] was computed against
}

func newRouteMemo(set effect.Set, n int) *routeMemo {
	return &routeMemo{set: set, dec: Route(set, n),
		rewritten: make([]string, n), rewSID: make([]int, n)}
}

// upConn is one session's connection to one member. dead is closed by
// its recvLoop on exit; forwards check it after registering an entry so
// an op can never be parked on a connection nobody is reading from.
type upConn struct {
	c    *svc.Client
	dead chan struct{}
}

// proxyEntry is one response owed to the client: either forwarded (resp
// arrives when the upstream recv goroutine matches the id) or local
// (resp pre-filled, done already closed).
type proxyEntry struct {
	id      uint64
	shard   int // forwarded member; -1 for local entries
	counted bool
	isData  bool
	sent    time.Time
	resp    *svc.Response
	done    chan struct{}
}

type rsession struct {
	r    *Router
	sid  int
	conn net.Conn
	sc   *svc.ServerConn
	q    chan *proxyEntry

	mu   sync.Mutex
	byID map[uint64]*proxyEntry

	// ups is guarded by mu: the reader goroutine dials slots lazily and
	// each member's recvLoop clears its own slot on connection loss, so
	// the next forward re-dials instead of writing into a dead socket.
	ups []*upConn
	wg  sync.WaitGroup // outstanding counted entries (cross-op barrier)

	memoV1 map[string]*routeMemo // bounded by cfg.EffCacheSize
	memoV2 []*routeMemo
}

func newRSession(r *Router, sid int, conn net.Conn) *rsession {
	return &rsession{r: r, sid: sid, conn: conn,
		q:      make(chan *proxyEntry, 256),
		byID:   make(map[uint64]*proxyEntry),
		ups:    make([]*upConn, r.n),
		memoV1: make(map[string]*routeMemo),
	}
}

func (s *rsession) main() {
	defer s.conn.Close()
	br := bufio.NewReaderSize(s.conn, 32<<10)
	bw := bufio.NewWriterSize(s.conn, 32<<10)
	sc, err := svc.NewServerConn(br, bw, s.r.cache, &s.r.m)
	if err != nil {
		s.r.m.ProtoErrors.Add(1)
		return
	}
	s.sc = sc
	if sc.Proto() == svc.ProtoV2 {
		s.r.m.V2Conns.Add(1)
		s.r.m.V2Live.Add(1)
		defer s.r.m.V2Live.Add(-1)
		s.memoV2 = make([]*routeMemo, svc.MaxEffectRefs)
	} else {
		s.r.m.V1Conns.Add(1)
		s.r.m.V1Live.Add(1)
		defer s.r.m.V1Live.Add(-1)
	}
	geo := &svc.StatsBody{Sched: s.r.sched, Shards: s.r.storeShards, Keys: s.r.keys}
	s.local(&svc.Response{Status: svc.StatusHello, Val: int64(s.sid), Stats: geo})
	writerDone := make(chan struct{})
	go func() { defer close(writerDone); s.writer() }()
	s.reader()
	close(s.q)
	<-writerDone
	s.mu.Lock()
	ups := append([]*upConn(nil), s.ups...)
	s.mu.Unlock()
	for _, u := range ups {
		if u != nil {
			u.c.Close()
		}
	}
}

func (s *rsession) reader() {
	for {
		var req svc.Request
		if err := s.sc.ReadRequest(&req); err != nil {
			var ne net.Error
			if s.r.draining.Load() && errors.As(err, &ne) && ne.Timeout() {
				return // graceful drain: stop reading, let pendings flush
			}
			// Disconnect: best-effort cancel of everything still
			// outstanding on the members, mirroring the single-node
			// server's effect release on disconnect.
			if n := s.cancelOutstanding(); n > 0 {
				s.r.m.Disconnects.Add(1)
			}
			return
		}
		s.handle(&req, false)
	}
}

func (s *rsession) handle(req *svc.Request, inBatch bool) {
	switch req.Op {
	case svc.OpBatch:
		if inBatch {
			s.r.m.Requests.Add(1)
			s.r.m.Rejected.Add(1)
			s.local(&svc.Response{ID: req.ID, Status: svc.StatusRejected, Err: "nested batch"})
			return
		}
		// The router decomposes batch frames and forwards the inner ops
		// individually — the wire contract (DESIGN.md §12) makes that
		// observationally identical to back-to-back frames; only the
		// members' SubmitBatch amortization is lost.
		s.r.m.Batches.Add(1)
		s.r.m.BatchedOps.Add(int64(len(req.Batch)))
		for i := range req.Batch {
			s.handle(&req.Batch[i], true)
		}
	case svc.OpStats:
		s.r.m.ControlOps.Add(1)
		st := s.r.Stats()
		s.local(&svc.Response{ID: req.ID, Status: svc.StatusOK, Stats: &st})
	case svc.OpCancel:
		s.handleCancel(req)
	case svc.OpPrepare, svc.OpCommit, svc.OpAbort:
		// The two-phase lane is coordinator-internal; clients do not
		// drive it through the router.
		s.r.m.Requests.Add(1)
		s.r.m.Rejected.Add(1)
		s.local(&svc.Response{ID: req.ID, Status: svc.StatusRejected, Err: fmt.Sprintf("op %q is not routable", req.Op)})
	default:
		s.handleData(req)
	}
}

// handleCancel forwards a cancel to the member its target was routed to,
// or acks landed=0 locally when the target is unknown (already resolved,
// or a cross-lane op the coordinator owns).
func (s *rsession) handleCancel(req *svc.Request) {
	s.r.m.ControlOps.Add(1)
	s.mu.Lock()
	target := s.byID[req.Target]
	var u *upConn
	if target != nil && target.shard >= 0 {
		u = s.ups[target.shard]
	}
	s.mu.Unlock()
	if target == nil || target.shard < 0 || u == nil {
		s.local(&svc.Response{ID: req.ID, Status: svc.StatusOK, Val: 0})
		return
	}
	e := &proxyEntry{id: req.ID, shard: target.shard, done: make(chan struct{})}
	s.mu.Lock()
	s.byID[req.ID] = e
	s.mu.Unlock()
	fwd := svc.Request{ID: req.ID, Op: svc.OpCancel, Target: req.Target}
	s.dispatch(u, e, &fwd, fmt.Sprintf("member %d unreachable", target.shard))
}

// handleData routes one data op by its declared effect and forwards it.
func (s *rsession) handleData(req *svc.Request) {
	m := &s.r.m
	m.Requests.Add(1)
	reject := func(format string, args ...any) {
		m.Rejected.Add(1)
		s.local(&svc.Response{ID: req.ID, Status: svc.StatusRejected, Err: fmt.Sprintf(format, args...)})
	}
	if err := req.WireErr(); err != nil {
		reject("%v", err)
		return
	}
	// Key-range validation mirrors the member-side buildTask check, but
	// must happen here too: routing (OwnerOfKey, perShard ledgers) indexes
	// by the key's owner before any member ever sees the request.
	switch req.Op {
	case svc.OpPut, svc.OpGet, svc.OpAdd:
		if req.Key < 0 || req.Key >= s.r.keys {
			reject("key %d out of range [0,%d)", req.Key, s.r.keys)
			return
		}
	}
	memo, err := s.routeFor(req)
	if err != nil {
		reject("bad effect: %v", err)
		return
	}
	switch memo.dec.Kind {
	case KindShard:
		s.forward(memo.dec.Shard, req, memo)
	case KindNone:
		s.forward(OwnerOfKey(req.Key, s.r.storeShards, s.r.n), req, memo)
	default:
		// Cross-shard or global: barrier on this session's own
		// outstanding ops (admission order across different upstream
		// connections is otherwise unordered), then run the lane
		// synchronously. Later ops are not even read until it finishes,
		// so program order holds on both sides.
		s.wg.Wait()
		resp := s.r.crossOp(s.sid, req, memo.set, memo.dec)
		resp.ID = req.ID
		s.r.classify(resp.Status)
		s.local(resp)
	}
}

// routeFor resolves the request's declared effect and returns the memo
// carrying its routing decision, keyed by v2 effect ref or v1 string.
func (s *rsession) routeFor(req *svc.Request) (*routeMemo, error) {
	set, resolved := req.ResolvedEffect()
	if ref, ok := req.EffRef(); ok && s.memoV2 != nil && int(ref) < len(s.memoV2) {
		if m := s.memoV2[ref]; m != nil && m.set.Equal(set) {
			return m, nil
		}
		m := newRouteMemo(set, s.r.n)
		s.memoV2[ref] = m
		return m, nil
	}
	if !resolved {
		if m := s.memoV1[req.Eff]; m != nil {
			return m, nil
		}
		var err error
		set, err = s.r.cache.Lookup(req.Eff)
		if err != nil {
			return nil, err
		}
		m := newRouteMemo(set, s.r.n)
		if len(s.memoV1) >= s.r.cfg.EffCacheSize {
			// Keep the memo bounded like the shared EffectCache: a client
			// cycling distinct effect strings must not grow router memory
			// without bound. Map iteration order gives a cheap arbitrary
			// eviction victim.
			for k := range s.memoV1 {
				delete(s.memoV1, k)
				break
			}
		}
		s.memoV1[req.Eff] = m
		return m, nil
	}
	return newRouteMemo(set, s.r.n), nil
}

// upstream returns (dialing on first use, or re-dialing after its
// recvLoop cleared the slot on connection loss) this session's
// connection to member k. Each client session gets its own upstream per
// member, so the member assigns it a dedicated session id — program
// order per (client, member) rides on the upstream's session effect
// exactly as it does for a directly-connected client.
func (s *rsession) upstream(k int) (*upConn, error) {
	s.mu.Lock()
	u := s.ups[k]
	s.mu.Unlock()
	if u != nil {
		return u, nil
	}
	c, err := svc.DialProto(s.r.cfg.Shards[k], svc.ProtoV2)
	if err != nil {
		return nil, err
	}
	u = &upConn{c: c, dead: make(chan struct{})}
	s.mu.Lock()
	s.ups[k] = u
	s.mu.Unlock()
	go s.recvLoop(k, u)
	return u, nil
}

// forward sends req to member k with its session effect rewritten into
// the upstream connection's namespace.
func (s *rsession) forward(k int, req *svc.Request, memo *routeMemo) {
	u, err := s.upstream(k)
	if err != nil {
		s.r.m.Errors.Add(1)
		s.local(&svc.Response{ID: req.ID, Status: svc.StatusError,
			Err: fmt.Sprintf("member %d unavailable: %v", k, err)})
		return
	}
	if memo.rewritten[k] == "" || memo.rewSID[k] != u.c.SID {
		rw, err := RewriteSession(memo.set, s.sid, u.c.SID)
		if err != nil {
			s.r.m.Rejected.Add(1)
			s.local(&svc.Response{ID: req.ID, Status: svc.StatusRejected, Err: err.Error()})
			return
		}
		memo.rewritten[k] = rw.String()
		memo.rewSID[k] = u.c.SID
	}
	e := &proxyEntry{id: req.ID, shard: k, counted: true, isData: true,
		sent: time.Now(), done: make(chan struct{})}
	s.r.flow.RLock()
	s.r.m.IncInflight()
	s.r.perShard[k].Fwd.Add(1)
	s.wg.Add(1)
	s.mu.Lock()
	s.byID[req.ID] = e
	s.mu.Unlock()
	fwd := svc.Request{ID: req.ID, Op: req.Op, Key: req.Key, Val: req.Val,
		Eff: memo.rewritten[k], Trace: req.Trace}
	s.dispatch(u, e, &fwd, fmt.Sprintf("member %d send failed", k))
}

// dispatch writes an already-registered entry's request to its upstream
// and hands the entry to the writer. If the send fails — or the
// upstream's recvLoop has already exited, in which case a send can
// still "succeed" into the kernel buffer of a half-dead socket with
// nobody left to match the response — the entry is failed locally.
// Settlement stays single-shot either way: failEntry only settles if
// the entry is still registered, and the dead-channel check is ordered
// against recvLoop's orphan sweep (dead is closed before the sweep;
// the entry was registered before this check), so an entry registered
// after the sweep is always caught here.
func (s *rsession) dispatch(u *upConn, e *proxyEntry, fwd *svc.Request, failMsg string) {
	err := u.c.Send(fwd)
	if err == nil {
		err = u.c.Flush()
	}
	if err == nil {
		select {
		case <-u.dead:
			s.failEntry(e, errors.New(failMsg))
		default:
		}
		s.q <- e
		return
	}
	s.failEntry(e, errors.New(failMsg))
	s.q <- e
}

// recvLoop matches member k's responses to their entries. On upstream
// failure it marks the connection dead, clears the member's slot (so
// the next forward re-dials instead of writing into a dead socket), and
// fails every entry still owed by that member so the writer (and the
// barrier) never hang.
func (s *rsession) recvLoop(k int, u *upConn) {
	for {
		resp, err := u.c.Recv()
		if err != nil {
			close(u.dead) // before the sweep: dispatch checks dead after registering
			s.mu.Lock()
			if s.ups[k] == u {
				s.ups[k] = nil
			}
			var orphans []*proxyEntry
			for id, e := range s.byID {
				if e.shard == k {
					delete(s.byID, id)
					orphans = append(orphans, e)
				}
			}
			s.mu.Unlock()
			u.c.Close()
			for _, e := range orphans {
				s.settle(e, &svc.Response{ID: e.id, Status: svc.StatusError,
					Err: fmt.Sprintf("member %d connection lost", k)})
			}
			return
		}
		s.mu.Lock()
		e := s.byID[resp.ID]
		if e != nil {
			delete(s.byID, resp.ID)
		}
		s.mu.Unlock()
		if e == nil {
			continue // response to a best-effort disconnect cancel
		}
		s.settle(e, resp)
	}
}

// settle resolves a forwarded entry exactly once: record the outcome,
// release the accounting the forward took, and wake the writer. The
// exactly-once contract rides on byID: only the path that removed the
// entry's registration calls settle.
func (s *rsession) settle(e *proxyEntry, resp *svc.Response) {
	e.resp = resp
	if e.isData {
		s.r.classify(resp.Status)
		if resp.Status == svc.StatusOK && e.shard >= 0 {
			s.r.perShard[e.shard].Srv.Add(1)
		}
		if e.shard >= 0 {
			s.r.lat[e.shard].observe(time.Since(e.sent).Nanoseconds())
		}
	}
	if e.counted {
		s.r.m.DecInflight()
		s.r.flow.RUnlock()
		s.wg.Done()
	}
	close(e.done)
}

// failEntry settles a forwarded entry with a local error after a send
// failure, but only if it is still registered: if recvLoop's orphan
// sweep (or a response) already claimed the id, that path owns the
// settle and doing it again would double-release flow/wg and close a
// closed channel.
func (s *rsession) failEntry(e *proxyEntry, err error) {
	s.mu.Lock()
	owned := s.byID[e.id] == e
	if owned {
		delete(s.byID, e.id)
	}
	s.mu.Unlock()
	if !owned {
		return
	}
	s.settle(e, &svc.Response{ID: e.id, Status: svc.StatusError, Err: err.Error()})
}

// local enqueues an already-decided response whose accounting (if any)
// the caller has already done.
func (s *rsession) local(resp *svc.Response) {
	e := &proxyEntry{id: resp.ID, shard: -1, resp: resp, done: make(chan struct{})}
	close(e.done)
	s.q <- e
}

// cancelOutstanding fires best-effort cancels for every op still in
// flight after a client disconnect and returns how many there were. The
// responses to the cancels themselves are discarded by recvLoop (their
// ids are never registered).
func (s *rsession) cancelOutstanding() int {
	s.mu.Lock()
	type tgt struct {
		u  *upConn
		id uint64
	}
	var tgts []tgt
	for id, e := range s.byID {
		if e.shard >= 0 && e.counted {
			tgts = append(tgts, tgt{s.ups[e.shard], id})
		}
	}
	s.mu.Unlock()
	for _, t := range tgts {
		if t.u != nil {
			t.u.c.Send(&svc.Request{ID: 0, Op: svc.OpCancel, Target: t.id})
			t.u.c.Flush()
		}
	}
	return len(tgts)
}

func (s *rsession) writer() {
	alive := true
	for e := range s.q {
		<-e.done
		if !alive {
			continue // keep draining so accounting still resolves
		}
		if err := s.sc.WriteResponse(e.resp); err != nil {
			alive = false
			continue
		}
		if len(s.q) == 0 && s.sc.Flush() != nil {
			alive = false
		}
	}
	if alive {
		s.sc.Flush()
	}
}

// classify accounts one relayed terminal status into the router's
// client-facing split (mirrors the single-node session's classify).
func (r *Router) classify(status string) {
	switch status {
	case svc.StatusOK:
		r.m.Served.Add(1)
	case svc.StatusShed:
		r.m.Shed.Add(1)
	case svc.StatusBusy:
		r.m.Busy.Add(1)
	case svc.StatusCancelled:
		r.m.Cancelled.Add(1)
	case svc.StatusRejected:
		r.m.Rejected.Add(1)
	default:
		r.m.Errors.Add(1)
	}
}
