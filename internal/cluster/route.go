// Package cluster shards the TWE service across processes (DESIGN.md
// §16): N twe-serve shard processes each run the full runtime and store
// geometry, and a thin router terminates client connections, parses each
// request's *declared effect*, and forwards it to the owner shard — the
// effect is the routing key, just as it is the admission key inside one
// process. Store shard k (region Shard:[k]) is owned by cluster member
// k mod N, so any two effects routed to different members are disjoint
// on the store subtree by construction; effects touching several
// members' regions go through a serialized cross-shard lane (coord.go)
// that admits a hold on every touched member via two-phase
// prepare/commit before any body runs.
package cluster

import (
	"twe/internal/effect"
	"twe/internal/rpl"
)

// Kind classifies where an effect can be admitted.
type Kind int

const (
	// KindNone: the effect names no store region at all (e.g. an add's
	// pure session effect). The op can run anywhere; the router places it
	// by key ownership so commutative per-key state stays on one member.
	KindNone Kind = iota
	// KindShard: every store region resolves to the single member Shard.
	KindShard
	// KindCross: store regions resolve to several members (Mask); the op
	// needs the cross-shard lane.
	KindCross
	// KindGlobal: some region is not attributable to any member set
	// (Root-level, unknown name, bare or parameterized Shard path) — only
	// the full-fleet lane is safe.
	KindGlobal
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindShard:
		return "shard"
	case KindCross:
		return "cross"
	default:
		return "global"
	}
}

// MaxMembers bounds the fleet size so a member set fits one uint64 mask.
const MaxMembers = 64

// Decision is Route's verdict for one declared effect.
type Decision struct {
	Kind  Kind
	Shard int    // owner member, when Kind == KindShard
	Mask  uint64 // touched members, when Kind == KindCross (bit i = member i)
}

// Route maps a declared effect to the cluster member(s) whose store
// regions it touches, over a fleet of n members. The partition function
// is owner(storeShard k) = k mod n; every region is classified as
//
//	Session:...            — placement-free (per-connection scratch; the
//	                         router rewrites the sid per upstream anyway)
//	Shard:[k]...           — owned by member k mod n
//	Shard:<wildcard>...    — touches every member (mask = all)
//	anything else          — global (Root writes, unknown subtrees, bare
//	                         Shard, parameterized paths)
//
// The union of the members touched decides the Kind. Route is a pure
// function of (effect, n): the property tests check that two effects
// routed to different single members are Disjoint on the store subtree
// for every concrete region pair.
func Route(set effect.Set, n int) Decision {
	if n < 1 {
		n = 1
	}
	if n > MaxMembers {
		n = MaxMembers
	}
	full := fullMask(n)
	var mask uint64
	global := false
	for i := 0; i < set.Len(); i++ {
		r := set.At(i).Region
		switch regionClass(r) {
		case regSession:
			// placement-free
		case regGlobal:
			global = true
		case regAllShards:
			mask |= full
		default:
			k := r.Elem(1).Index
			mask |= 1 << uint(k%n)
		}
	}
	switch {
	case global:
		return Decision{Kind: KindGlobal, Mask: full}
	case mask == 0:
		return Decision{Kind: KindNone}
	case mask&(mask-1) == 0:
		return Decision{Kind: KindShard, Shard: bitIndex(mask)}
	default:
		return Decision{Kind: KindCross, Mask: mask}
	}
}

// OwnerOfKey places a store-region-free op (KindNone) by key ownership:
// the member owning the key's store shard, for a store of storeShards.
// The result is always a valid member index, even for out-of-range keys
// (Go's % preserves sign) — the router rejects those before forwarding,
// but a routing function that can return an out-of-range index is a
// panic waiting for the next caller.
func OwnerOfKey(key, storeShards, n int) int {
	if storeShards < 1 {
		storeShards = 1
	}
	if n < 1 {
		n = 1
	}
	shard := key % storeShards
	if shard < 0 {
		shard += storeShards
	}
	return shard % n
}

// fullMask is the all-members mask for a fleet of n.
func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

func bitIndex(mask uint64) int {
	i := 0
	for mask>>1 != 0 {
		mask >>= 1
		i++
	}
	return i
}

// region classes for Route.
const (
	regSession = iota
	regShardIdx
	regAllShards
	regGlobal
)

func regionClass(r rpl.RPL) int {
	if r.Len() == 0 {
		return regGlobal // a Root effect covers everything
	}
	head := r.Elem(0)
	if head.Kind != rpl.Name {
		return regGlobal // wildcard or param at the top covers Shard too
	}
	switch head.Name {
	case "Session":
		return regSession
	case "Shard":
		if r.Len() < 2 {
			return regGlobal // bare Shard region covers every shard index
		}
		switch second := r.Elem(1); second.Kind {
		case rpl.Index:
			return regShardIdx
		case rpl.Star, rpl.AnyIndex:
			return regAllShards
		default:
			return regGlobal // parameterized index: not statically placeable
		}
	default:
		return regGlobal // unknown subtree: route conservatively
	}
}
