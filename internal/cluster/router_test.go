package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"twe/internal/svc"
)

// fleet is an in-process cluster: n twe-serve shards plus a router, all
// with the isolation oracle attached shard-side.
type fleet struct {
	shards []*svc.Server
	router *Router
	addr   string // router listen address
}

func startFleet(t *testing.T, n int, lane string) *fleet {
	t.Helper()
	f := &fleet{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := svc.Start(svc.Config{
			ShardID:   i,
			Advertise: fmt.Sprintf("inproc-shard-%d", i),
			Isolcheck: true,
		})
		if err != nil {
			t.Fatalf("start shard %d: %v", i, err)
		}
		f.shards = append(f.shards, s)
		addrs[i] = s.Addr()
	}
	r, err := New(Config{Shards: addrs, CrossLane: lane})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	f.router = r
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = ln.Addr().String()
	go r.Serve(ln)
	return f
}

// drainClean shuts the fleet down in dependency order and fails the test
// on any dirty drain or shard-side isolation violation.
func (f *fleet) drainClean(t *testing.T) {
	t.Helper()
	if err := f.router.Drain(10 * time.Second); err != nil {
		t.Errorf("router drain: %v", err)
	}
	for i, s := range f.shards {
		if err := s.Drain(10 * time.Second); err != nil {
			t.Errorf("shard %d drain: %v", i, err)
		}
		if v := s.Violations(); len(v) != 0 {
			t.Errorf("shard %d isolation violations: %v", i, v)
		}
	}
}

// awaitFleetClean polls the control-plane snapshot until the fleet-wide
// accounting identities hold (member reaping after client kills is
// asynchronous), failing after a deadline.
func awaitFleetClean(t *testing.T, r *Router) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := r.Snapshot()
		v := FleetCheck(&snap)
		if len(v) == 0 {
			return &snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet check never settled: %v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runClusterLoad(t *testing.T, lane string, cfg svc.LoadConfig) {
	t.Helper()
	f := startFleet(t, 2, lane)
	cfg.Addr = f.addr
	rep, err := svc.RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	if rep.Checks == 0 {
		t.Fatal("oracle performed zero checks")
	}
	snap := awaitFleetClean(t, f.router)
	var fwd int64
	for _, m := range snap.Members {
		fwd += m.Fwd + m.Prep
	}
	if fwd == 0 {
		t.Fatal("no operations reached any member")
	}
	f.drainClean(t)
}

// TestClusterLoadTwoPhase drives the full differential load battery
// through a 2-shard fleet on the two-phase cross lane: mixed protocols,
// contention, and periodic cross-shard scans, with the isolation oracle
// on every shard and the exact client/server cross-check intact.
func TestClusterLoadTwoPhase(t *testing.T) {
	runClusterLoad(t, "2pc", svc.LoadConfig{
		Conns: 6, Requests: 90, Pipeline: 4,
		Conflict: 0.25, ScanEvery: 7, Seed: 1, Proto: "mixed",
	})
}

// TestClusterLoadSerial drives the same battery over the serial global
// lane — the stop-the-world fallback must produce identical oracle
// outcomes, only slower.
func TestClusterLoadSerial(t *testing.T) {
	runClusterLoad(t, "serial", svc.LoadConfig{
		Conns: 4, Requests: 60, Pipeline: 4,
		Conflict: 0.25, ScanEvery: 6, Seed: 2, Proto: "v1",
	})
}

// TestClusterLoadFaults turns on the fault battery (abrupt client kills
// plus wire cancels): the routers best-effort disconnect cancels and the
// shards' reapers must release every effect, and the sweep oracle's
// possible-write sets must still hold fleet-wide.
func TestClusterLoadFaults(t *testing.T) {
	runClusterLoad(t, "2pc", svc.LoadConfig{
		Conns: 6, Requests: 80, Pipeline: 4,
		Conflict: 0.3, ScanEvery: 9, Seed: 3, Proto: "mixed", Faults: true,
	})
}

// TestClusterSingleMember: a 1-member fleet routes everything (scans
// included) straight to the only shard — no coordinator rounds at all.
func TestClusterSingleMember(t *testing.T) {
	f := startFleet(t, 1, "2pc")
	rep, err := svc.RunLoad(svc.LoadConfig{
		Addr: f.addr, Conns: 3, Requests: 50,
		Conflict: 0.2, ScanEvery: 5, Seed: 4, Proto: "v2",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violation: %s", v)
	}
	snap := awaitFleetClean(t, f.router)
	if got := snap.Members[0].Prep; got != 0 {
		t.Errorf("single-member fleet ran %d coordinator prepares, want 0", got)
	}
	f.drainClean(t)
}

// TestRouterRejectsTwoPhaseOps: clients cannot drive the coordinator's
// internal prepare/commit/abort ops through the router.
func TestRouterRejectsTwoPhaseOps(t *testing.T) {
	f := startFleet(t, 2, "2pc")
	c, err := svc.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{svc.OpPrepare, svc.OpCommit, svc.OpAbort} {
		resp, err := c.Do(&svc.Request{Op: op, Key: 1, Eff: svc.PutEffect(c.Shards, 1, c.SID)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != svc.StatusRejected {
			t.Fatalf("%s through router: status %q, want rejected", op, resp.Status)
		}
	}
	c.Close()
	f.drainClean(t)
}

// TestRouterForeignSessionRejected: a declared effect claiming another
// session's namespace is refused at the router, not forwarded.
func TestRouterForeignSessionRejected(t *testing.T) {
	f := startFleet(t, 2, "2pc")
	c, err := svc.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	eff := fmt.Sprintf("writes Root:Shard:[1], writes Root:Session:[%d]", c.SID+100)
	resp, err := c.Do(&svc.Request{Op: svc.OpPut, Key: 1, Val: 5, Eff: eff})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != svc.StatusRejected {
		t.Fatalf("foreign-session put: status %q (%s), want rejected", resp.Status, resp.Err)
	}
	c.Close()
	f.drainClean(t)
}

// TestClusterCrossShardConflict races cross-shard scans against
// single-shard puts: key 0 lives on member 0 and key 1 on member 1, a
// writer walks both monotonically upward round by round, and a second
// connection keeps scanning. Each scan must stay within the reachable
// envelope and never go backwards, and the contention must neither
// deadlock the coordinator nor surface a non-OK status.
func TestClusterCrossShardConflict(t *testing.T) {
	f := startFleet(t, 2, "2pc")
	c, err := svc.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	const rounds = 30
	done := make(chan error, 1)
	go func() {
		c2, err := svc.Dial(f.addr)
		if err != nil {
			done <- err
			return
		}
		defer c2.Close()
		for r := 1; r <= rounds; r++ {
			for key := 0; key < 2; key++ {
				resp, err := c2.Do(&svc.Request{Op: svc.OpPut, Key: key, Val: int64(r),
					Eff: svc.PutEffect(c2.Shards, key, c2.SID)})
				if err != nil {
					done <- err
					return
				}
				if resp.Status != svc.StatusOK {
					done <- fmt.Errorf("put round %d key %d: %s", r, key, resp.Status)
					return
				}
			}
		}
		done <- nil
	}()
	for i := 0; i < 15; i++ {
		resp, err := c.Do(&svc.Request{Op: svc.OpScan, Eff: svc.ScanEffect(c.SID)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != svc.StatusOK {
			t.Fatalf("scan %d: status %q (%s)", i, resp.Status, resp.Err)
		}
		if resp.Val < last {
			t.Fatalf("scan %d went backwards: %d after %d (torn cross-shard read)", i, resp.Val, last)
		}
		if resp.Val > 2*rounds {
			t.Fatalf("scan %d: %d exceeds any reachable state (max %d)", i, resp.Val, 2*rounds)
		}
		last = resp.Val
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Close()
	awaitFleetClean(t, f.router)
	f.drainClean(t)
}

// TestRouterRejectsOutOfRangeKeys: a malformed key must be rejected at
// the router, never routed — a negative key on a session-only (KindNone)
// effect used to drive OwnerOfKey to a negative member index and panic
// the whole router process.
func TestRouterRejectsOutOfRangeKeys(t *testing.T) {
	f := startFleet(t, 2, "2pc")
	c, err := svc.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op  string
		key int
		eff string
	}{
		{svc.OpAdd, -1, svc.AddEffect(c.SID)},
		{svc.OpAdd, c.Keys, svc.AddEffect(c.SID)},
		{svc.OpPut, -7, svc.PutEffect(c.Shards, 0, c.SID)},
		{svc.OpGet, c.Keys + 100, svc.GetEffect(c.Shards, 0, c.SID)},
	}
	for _, tc := range cases {
		resp, err := c.Do(&svc.Request{Op: tc.op, Key: tc.key, Val: 1, Eff: tc.eff})
		if err != nil {
			t.Fatalf("%s key %d: %v", tc.op, tc.key, err)
		}
		if resp.Status != svc.StatusRejected {
			t.Fatalf("%s key %d: status %q (%s), want rejected", tc.op, tc.key, resp.Status, resp.Err)
		}
	}
	// The router (and this session) must still be fully alive.
	resp, err := c.Do(&svc.Request{Op: svc.OpPut, Key: 1, Val: 9, Eff: svc.PutEffect(c.Shards, 1, c.SID)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != svc.StatusOK {
		t.Fatalf("follow-up put: status %q (%s), want ok", resp.Status, resp.Err)
	}
	c.Close()
	f.drainClean(t)
}

// TestCrossOpMustCoverOwner: a cross-shard non-scan op whose declared
// effect does not reach its key's owner member must be rejected. Before
// this check every leg was a pure hold — the op executed nowhere, no
// member's Covers fired, and the router answered StatusOK for a silent
// no-op, breaking the observationally-single-node contract.
func TestCrossOpMustCoverOwner(t *testing.T) {
	for _, lane := range []string{"2pc", "serial"} {
		t.Run(lane, func(t *testing.T) {
			f := startFleet(t, 3, lane)
			c, err := svc.Dial(f.addr)
			if err != nil {
				t.Fatal(err)
			}
			// Key 0 lives on store shard 0 → member 0; the declared effect
			// touches members 1 and 2 only.
			eff := fmt.Sprintf("writes Root:Shard:[1], writes Root:Shard:[2], writes Root:Session:[%d]", c.SID)
			resp, err := c.Do(&svc.Request{Op: svc.OpPut, Key: 0, Val: 5, Eff: eff})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != svc.StatusRejected {
				t.Fatalf("uncovered cross put: status %q (%s), want rejected", resp.Status, resp.Err)
			}
			// The same shape covering the owner is admitted normally.
			eff = fmt.Sprintf("writes Root:Shard:[0], writes Root:Shard:[1], writes Root:Session:[%d]", c.SID)
			resp, err = c.Do(&svc.Request{Op: svc.OpPut, Key: 0, Val: 5, Eff: eff})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != svc.StatusOK {
				t.Fatalf("covered cross put: status %q (%s), want ok", resp.Status, resp.Err)
			}
			c.Close()
			f.drainClean(t)
		})
	}
}

// TestMemberLossFailsFastAndRecovers: when a member dies mid-session the
// ops it owes must fail with an error status (never wedge the session),
// later forwards to it must fail fast through a re-dial attempt, and
// traffic to surviving members — plus a clean router drain — must keep
// working. Before the recvLoop slot-clearing fix, the first forward
// after the loss parked an entry on the dead connection forever and a
// drain could never finish.
func TestMemberLossFailsFastAndRecovers(t *testing.T) {
	f := startFleet(t, 2, "2pc")
	c, err := svc.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(&svc.Request{Op: svc.OpPut, Key: 1, Val: 1, Eff: svc.PutEffect(c.Shards, 1, c.SID)})
	if err != nil || resp.Status != svc.StatusOK {
		t.Fatalf("warm-up put to member 1: %v / %+v", err, resp)
	}
	// Kill member 1 (key 1's owner).
	if err := f.shards[1].Drain(5 * time.Second); err != nil {
		t.Fatalf("drain shard 1: %v", err)
	}
	// Every subsequent op owned by member 1 must resolve with an error
	// status — whether it races the connection-loss sweep or hits the
	// cleared slot's failed re-dial.
	for i := 0; i < 3; i++ {
		resp, err = c.Do(&svc.Request{Op: svc.OpPut, Key: 1, Val: 2, Eff: svc.PutEffect(c.Shards, 1, c.SID)})
		if err != nil {
			t.Fatalf("put %d after member loss: transport error %v (session wedged?)", i, err)
		}
		if resp.Status != svc.StatusError {
			t.Fatalf("put %d after member loss: status %q (%s), want error", i, resp.Status, resp.Err)
		}
	}
	// The surviving member still serves.
	resp, err = c.Do(&svc.Request{Op: svc.OpPut, Key: 0, Val: 3, Eff: svc.PutEffect(c.Shards, 0, c.SID)})
	if err != nil || resp.Status != svc.StatusOK {
		t.Fatalf("put to surviving member 0: %v / %+v", err, resp)
	}
	c.Close()
	if err := f.router.Drain(10 * time.Second); err != nil {
		t.Errorf("router drain after member loss: %v", err)
	}
	if err := f.shards[0].Drain(5 * time.Second); err != nil {
		t.Errorf("drain shard 0: %v", err)
	}
	for i := 0; i < 2; i++ {
		if v := f.shards[i].Violations(); len(v) != 0 {
			t.Errorf("shard %d isolation violations: %v", i, v)
		}
	}
}

// TestMemoV1Bounded: the per-session v1 route memo must stay bounded by
// EffCacheSize no matter how many distinct effect strings a client
// cycles through.
func TestMemoV1Bounded(t *testing.T) {
	const cap = 8
	s, err := svc.Start(svc.Config{Isolcheck: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Shards: []string{s.Addr()}, EffCacheSize: cap})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	c, err := svc.DialProto(ln.Addr().String(), svc.ProtoV1)
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	if len(r.live) != 1 {
		r.mu.Unlock()
		t.Fatalf("want 1 live session, have %d", len(r.live))
	}
	var sess *rsession
	for s := range r.live {
		sess = s
	}
	r.mu.Unlock()
	for i := 0; i < 4*cap; i++ {
		// Distinct strings, all covering the put's required set (the extra
		// session-subtree write is subsumed by the session write).
		eff := fmt.Sprintf("writes Root:Shard:[1], writes Root:Session:[%d], writes Root:Session:[%d]:[%d]", c.SID, c.SID, i)
		resp, err := c.Do(&svc.Request{Op: svc.OpPut, Key: 1, Val: int64(i), Eff: eff})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != svc.StatusOK {
			t.Fatalf("put %d: status %q (%s)", i, resp.Status, resp.Err)
		}
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.live)
		r.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(sess.memoV1); got > cap {
		t.Fatalf("memoV1 grew to %d entries, want <= %d", got, cap)
	}
	if err := r.Drain(5 * time.Second); err != nil {
		t.Errorf("drain: %v", err)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Errorf("shard drain: %v", err)
	}
}
