package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"twe/internal/svc"
)

// FetchSnapshot pulls the /cluster snapshot from a router control-plane
// base URL ("http://host:port").
func FetchSnapshot(controlURL string) (*Snapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(controlURL + "/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/cluster: %s", controlURL, resp.Status)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// FleetCheck verifies the cluster-wide accounting identities against a
// snapshot taken at idle after a fault-free run:
//
//   - member.Requests == Fwd + Prep — every data op a member accounted
//     for entered through this router, exactly once (no lost or
//     duplicated forwards, no stray writers)
//   - member.Served == Srv — every served outcome the member counted was
//     relayed (or committed) by the router, exactly once
//   - member.Inflight == 0 and no held prepares — the fleet quiesced:
//     every hold was committed, aborted, or reaped
//
// It returns one violation string per broken identity.
func FleetCheck(snap *Snapshot) []string {
	var violations []string
	v := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	for _, m := range snap.Members {
		if m.Stats == nil {
			v("member %d: no stats in snapshot (%s)", m.ID, m.ProbeErr)
			continue
		}
		if want := m.Fwd + m.Prep; m.Stats.Requests != want {
			v("member %d: requests %d != router fwd %d + prep %d", m.ID, m.Stats.Requests, m.Fwd, m.Prep)
		}
		if m.Stats.Served != m.Srv {
			v("member %d: served %d != router-observed %d", m.ID, m.Stats.Served, m.Srv)
		}
		if m.Stats.Inflight != 0 {
			v("member %d: inflight gauge leaked: %d", m.ID, m.Stats.Inflight)
		}
	}
	return violations
}

// MemberBench is one member's row in BENCH_cluster.json.
type MemberBench struct {
	ID        int     `json:"id"`
	Addr      string  `json:"addr"`
	Served    int64   `json:"served"`
	RPS       float64 `json:"rps"` // member served ops / drive-phase seconds
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	Fwd       int64   `json:"fwd"`
	Prep      int64   `json:"prep"`
	Inflight  int64   `json:"inflight"`
	HeldPreps int64   `json:"held_prepares"`
}

// BenchReport is the BENCH_cluster.json schema (EXPERIMENTS.md): the
// fleet-wide twe-load result plus the per-member split, alongside the
// single-node baseline the scale-out ratio is judged against.
type BenchReport struct {
	Members   int     `json:"members"`
	CrossLane string  `json:"cross_lane"`
	Sched     string  `json:"sched"`
	Conns     int     `json:"conns"`
	Requests  int     `json:"requests_per_conn"`
	Conflict  float64 `json:"conflict"`

	ClusterRPS    float64 `json:"cluster_rps"`
	BaselineRPS   float64 `json:"baseline_rps"` // same config, one node, 0 when not measured
	ScaleoutRatio float64 `json:"scaleout_ratio"`

	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`

	PerMember []MemberBench `json:"per_member"`

	Checks     int64    `json:"checks"`
	Violations []string `json:"violations"`
}

// BuildBench folds a twe-load report and a post-run snapshot into the
// cluster bench row. elapsed is the drive-phase duration the per-member
// rps is computed over.
func BuildBench(rep *svc.LoadReport, snap *Snapshot, cfg svc.LoadConfig, baselineRPS float64) *BenchReport {
	b := &BenchReport{
		Members:    len(snap.Members),
		CrossLane:  snap.CrossLane,
		Sched:      rep.Sched,
		Conns:      rep.Conns,
		Requests:   rep.RequestsPerConn,
		Conflict:   cfg.Conflict,
		ClusterRPS: rep.ThroughputRPS,
		P50MS:      float64(rep.P50NS) / 1e6,
		P99MS:      float64(rep.P99NS) / 1e6,
		Checks:     rep.Checks,
		Violations: rep.Violations,
	}
	b.BaselineRPS = baselineRPS
	if baselineRPS > 0 {
		b.ScaleoutRatio = b.ClusterRPS / baselineRPS
	}
	sec := float64(rep.ElapsedNS) / 1e9
	for _, m := range snap.Members {
		mb := MemberBench{ID: m.ID, Addr: m.Addr, Fwd: m.Fwd, Prep: m.Prep,
			Inflight: m.Inflight, HeldPreps: m.HeldPrepares,
			P50MS: float64(m.P50NS) / 1e6, P99MS: float64(m.P99NS) / 1e6}
		if m.Stats != nil {
			mb.Served = m.Stats.Served
			if sec > 0 {
				mb.RPS = float64(m.Stats.Served) / sec
			}
		}
		b.PerMember = append(b.PerMember, mb)
	}
	return b
}

// WriteBench renders the report as indented JSON to path.
func (b *BenchReport) WriteBench(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
