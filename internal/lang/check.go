package lang

import (
	"fmt"
	"sort"

	"twe/internal/compound"
	"twe/internal/dataflow"
	"twe/internal/effect"
	"twe/internal/rpl"
)

// Diagnostic is one checker finding.
type Diagnostic struct {
	Pos     Pos
	Msg     string
	Warning bool
}

func (d Diagnostic) String() string {
	sev := "error"
	if d.Warning {
		sev = "warning"
	}
	return fmt.Sprintf("twel:%v: %s: %s", d.Pos, sev, d.Msg)
}

// Result collects the checker's findings.
type Result struct {
	Errors   []Diagnostic
	Warnings []Diagnostic
}

// OK reports whether the program passed all static checks.
func (r *Result) OK() bool { return len(r.Errors) == 0 }

// Check runs all static checks of the TWE model on the program: name
// resolution, effect-summary resolution, the covering-effect analysis
// (structure-based, §4.4, cross-validated against the iterative CFG
// analysis of §4.3), the deterministic restriction (§3.3.5), and the
// dynamic-reference-set must-analysis (§7.2.6–7.2.7).
func Check(prog *Program) *Result {
	c := &checker{prog: prog}
	c.resolveDecls()
	c.checkCallCycles()
	for _, t := range prog.Tasks {
		c.checkTask(t)
	}
	c.dedupe()
	return &c.res
}

type checker struct {
	prog    *Program
	res     Result
	regions map[string]bool
	vars    map[string]rpl.RPL
	arrays  map[string]rpl.RPL // element i of a lives in arrays[a]:[i]
	refs    map[string]bool
	tasks   map[string]*TaskDecl

	// resolved per-statement effect info, consumed by the CFG lowering.
	accessEff map[Stmt]effect.Set
	spawnEff  map[Stmt]effect.Set
	joinEff   map[Stmt]effect.Set
}

func (c *checker) errf(pos Pos, format string, args ...any) {
	c.res.Errors = append(c.res.Errors, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) warnf(pos Pos, format string, args ...any) {
	c.res.Warnings = append(c.res.Warnings, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), Warning: true})
}

func (c *checker) dedupe() {
	key := func(d Diagnostic) string { return fmt.Sprintf("%v|%s|%v", d.Pos, d.Msg, d.Warning) }
	uniq := func(ds []Diagnostic) []Diagnostic {
		seen := map[string]bool{}
		var out []Diagnostic
		for _, d := range ds {
			k := key(d)
			if !seen[k] {
				seen[k] = true
				out = append(out, d)
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Pos.Line != out[j].Pos.Line {
				return out[i].Pos.Line < out[j].Pos.Line
			}
			return out[i].Pos.Col < out[j].Pos.Col
		})
		return out
	}
	c.res.Errors = uniq(c.res.Errors)
	c.res.Warnings = uniq(c.res.Warnings)
}

func (c *checker) resolveDecls() {
	c.regions = map[string]bool{}
	c.vars = map[string]rpl.RPL{}
	c.arrays = map[string]rpl.RPL{}
	c.refs = map[string]bool{}
	c.tasks = map[string]*TaskDecl{}
	c.accessEff = map[Stmt]effect.Set{}
	c.spawnEff = map[Stmt]effect.Set{}
	c.joinEff = map[Stmt]effect.Set{}

	for _, r := range c.prog.Regions {
		if c.regions[r] {
			c.errf(Pos{}, "region %q declared twice", r)
		}
		c.regions[r] = true
	}
	for _, v := range c.prog.Vars {
		if _, dup := c.vars[v.Name]; dup {
			c.errf(v.Pos, "var %q declared twice", v.Name)
		}
		c.vars[v.Name] = c.resolveRPL(v.Region, nil, v.Pos)
	}
	for _, a := range c.prog.Arrays {
		if _, dup := c.arrays[a.Name]; dup {
			c.errf(a.Pos, "array %q declared twice", a.Name)
		}
		if a.Size <= 0 {
			c.errf(a.Pos, "array %q has non-positive size %d", a.Name, a.Size)
		}
		c.arrays[a.Name] = c.resolveRPL(a.Region, nil, a.Pos)
	}
	for _, r := range c.prog.RefVars {
		if c.refs[r.Name] {
			c.errf(r.Pos, "refvar %q declared twice", r.Name)
		}
		c.refs[r.Name] = true
	}
	for _, t := range c.prog.Tasks {
		if _, dup := c.tasks[t.Name]; dup {
			c.errf(t.Pos, "task %q declared twice", t.Name)
		}
		c.tasks[t.Name] = t
	}
}

// resolveRPL turns a syntactic RPL into a static rpl.RPL, mapping index
// expressions to concrete indices (constants), parameter elements
// (identifiers in params), or [?] otherwise.
func (c *checker) resolveRPL(e *RPLExpr, params map[string]bool, pos Pos) rpl.RPL {
	var elems []rpl.Elem
	for _, el := range e.Elems {
		switch el.Kind {
		case ElemName:
			if !c.regions[el.Name] {
				c.errf(pos, "undeclared region %q in RPL", el.Name)
			}
			elems = append(elems, rpl.N(el.Name))
		case ElemStar:
			elems = append(elems, rpl.Any)
		case ElemAnyIdx:
			elems = append(elems, rpl.AnyIdx)
		case ElemIndex:
			elems = append(elems, c.resolveIndex(el.Index, params))
		}
	}
	return rpl.New(elems...)
}

// resolveIndex maps an index expression to a static RPL element.
func (c *checker) resolveIndex(e Expr, params map[string]bool) rpl.Elem {
	if n, ok := constFold(e); ok {
		return rpl.Idx(n)
	}
	if id, ok := e.(*Ident); ok && params[id.Name] {
		return rpl.P(id.Name)
	}
	return rpl.AnyIdx
}

func constFold(e Expr) (int, bool) {
	switch v := e.(type) {
	case *Num:
		return v.Value, true
	case *Binary:
		l, lok := constFold(v.L)
		r, rok := constFold(v.R)
		if !lok || !rok {
			return 0, false
		}
		switch v.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r != 0 {
				return l / r, true
			}
		case "%":
			if r != 0 {
				return l % r, true
			}
		}
	}
	return 0, false
}

// declaredEffects resolves a task's effect summary with its own parameters
// symbolic.
func (c *checker) declaredEffects(t *TaskDecl) effect.Set {
	params := map[string]bool{}
	for _, p := range t.Params {
		params[p] = true
	}
	var effs []effect.Effect
	for _, item := range t.Effects {
		r := c.resolveRPL(item.Region, params, item.Pos)
		effs = append(effs, effect.Effect{Write: item.Write, Region: r})
	}
	return effect.NewSet(effs...)
}

// substitutedEffects resolves a callee's declared effects at a call site,
// substituting the argument expressions for the callee's parameters
// (constants stay concrete, the caller's own parameters stay symbolic,
// anything else becomes [?]).
func (c *checker) substitutedEffects(callee *TaskDecl, args []Expr, callerParams map[string]bool) effect.Set {
	argFor := map[string]Expr{}
	for i, p := range callee.Params {
		if i < len(args) {
			argFor[p] = args[i]
		}
	}
	var effs []effect.Effect
	for _, item := range callee.Effects {
		var elems []rpl.Elem
		for _, el := range item.Region.Elems {
			switch el.Kind {
			case ElemName:
				elems = append(elems, rpl.N(el.Name))
			case ElemStar:
				elems = append(elems, rpl.Any)
			case ElemAnyIdx:
				elems = append(elems, rpl.AnyIdx)
			case ElemIndex:
				// Substitute callee params with the call arguments.
				idx := el.Index
				if id, ok := idx.(*Ident); ok {
					if arg, bound := argFor[id.Name]; bound {
						idx = arg
					}
				}
				elems = append(elems, c.resolveIndex(idx, callerParams))
			}
		}
		effs = append(effs, effect.Effect{Write: item.Write, Region: rpl.New(elems...)})
	}
	return effect.NewSet(effs...)
}

// --- per-task checking -----------------------------------------------------

type futureInfo struct {
	task    *TaskDecl
	spawned bool
	eff     effect.Set // substituted effects at the creation site
}

// flow is the combined analysis state flowing through the structure-based
// walk: the covering compound effect (§4.4) and the must-set of
// definitely-added dynamic references (§7.2.6).
type flow struct {
	cov  *compound.Compound
	refs map[string]bool
}

func (f flow) clone() flow {
	r := map[string]bool{}
	for k, v := range f.refs {
		if v {
			r[k] = true
		}
	}
	return flow{cov: f.cov, refs: r}
}

// meetFlow intersects two states (control-flow merge).
func meetFlow(a, b flow) flow {
	refs := map[string]bool{}
	for k := range a.refs {
		if b.refs[k] {
			refs[k] = true
		}
	}
	return flow{cov: compound.Meet(a.cov, b.cov), refs: refs}
}

func sameRefs(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

type taskChecker struct {
	*checker
	task    *TaskDecl
	params  map[string]bool
	locals  map[string]bool
	callees map[string]bool
	futures map[string]*futureInfo
	// joins records the distinct join statements per future name; two
	// different joins of one future may double-join at run time.
	joins map[string]map[Stmt]bool
}

func (c *checker) checkTask(t *TaskDecl) {
	tc := &taskChecker{
		checker: c,
		task:    t,
		params:  map[string]bool{},
		locals:  map[string]bool{},
		callees: map[string]bool{},
		futures: map[string]*futureInfo{},
		joins:   map[string]map[Stmt]bool{},
	}
	for _, p := range t.Params {
		if tc.params[p] {
			c.errf(t.Pos, "task %q: duplicate parameter %q", t.Name, p)
		}
		tc.params[p] = true
	}
	declared := c.declaredEffects(t)
	in := flow{cov: compound.NewBase(declared), refs: map[string]bool{}}
	tc.block(t.Body, in)

	for name, stmts := range tc.joins {
		if len(stmts) > 1 {
			c.warnf(t.Pos, "task %q: future %q joined on %d paths; joining twice at run time is an error", t.Name, name, len(stmts))
		}
	}

	// Cross-check with the iterative CFG analysis (§4.3). The two
	// algorithms compute the same meet-over-paths solution, so any access
	// flagged by one must be flagged by the other.
	tc.crossValidate(declared)
}

// block runs the structure-based covering analysis (§4.4) over b.
func (tc *taskChecker) block(b *Block, in flow) flow {
	cur := in
	for _, s := range b.Stmts {
		cur = tc.stmt(s, cur)
	}
	return cur
}

func (tc *taskChecker) stmt(s Stmt, in flow) flow {
	switch st := s.(type) {
	case *Skip:
		return in

	case *LocalDecl:
		eff := tc.exprEffect(st.Value)
		tc.checkCovered(s, st.Pos, eff, in)
		tc.locals[st.Name] = true
		return in

	case *AssignVar:
		eff := tc.exprEffect(st.Value)
		if tc.locals[st.Name] || tc.params[st.Name] {
			if tc.params[st.Name] {
				tc.errf(st.Pos, "cannot assign to parameter %q", st.Name)
			}
			// local update: value reads only
		} else if r, ok := tc.vars[st.Name]; ok {
			eff = eff.Union(effect.NewSet(effect.WriteEff(r)))
		} else {
			tc.errf(st.Pos, "undefined variable %q", st.Name)
		}
		tc.checkCovered(s, st.Pos, eff, in)
		return in

	case *AssignArray:
		eff := tc.exprEffect(st.Index).Union(tc.exprEffect(st.Value))
		if base, ok := tc.arrays[st.Name]; ok {
			elem := tc.resolveIndex(st.Index, tc.params)
			eff = eff.Union(effect.NewSet(effect.WriteEff(base.Append(elem))))
		} else {
			tc.errf(st.Pos, "undefined array %q", st.Name)
		}
		tc.checkCovered(s, st.Pos, eff, in)
		return in

	case *If:
		eff := tc.exprEffect(st.Cond)
		tc.checkCovered(s, st.Pos, eff, in)
		thenOut := tc.block(st.Then, in.clone())
		elseOut := in
		if st.Else != nil {
			elseOut = tc.block(st.Else, in.clone())
		}
		return meetFlow(thenOut, elseOut)

	case *While:
		eff := tc.exprEffect(st.Cond)
		tc.checkCovered(s, st.Pos, eff, in)
		// First pass over the body (§4.4).
		out1 := tc.block(st.Body, in.clone())
		if out1.cov.SyntacticEqual(in.cov) && sameRefs(out1.refs, in.refs) {
			return in
		}
		// Second pass from the meet of entry and first-pass exit.
		entry := meetFlow(in, out1)
		out2 := tc.block(st.Body, entry.clone())
		return meetFlow(entry, out2)

	case *LetFuture:
		callee, ok := tc.tasks[st.Task]
		if !ok {
			tc.errf(st.Pos, "undefined task %q", st.Task)
			return in
		}
		if len(st.Args) != len(callee.Params) {
			tc.errf(st.Pos, "task %q takes %d arguments, got %d", st.Task, len(callee.Params), len(st.Args))
		}
		var argEff effect.Set
		for _, a := range st.Args {
			argEff = argEff.Union(tc.exprEffect(a))
		}
		tc.checkCovered(s, st.Pos, argEff, in)
		sub := tc.substitutedEffects(callee, st.Args, tc.params)
		tc.futures[st.Name] = &futureInfo{task: callee, spawned: st.Spawn, eff: sub}
		if !st.Spawn {
			if tc.task.Deterministic {
				tc.errf(st.Pos, "deterministic task %q may not use executeLater (§3.3.5)", tc.task.Name)
			}
			return in
		}
		// Spawn: covering-effect transfer (§3.1.5).
		if tc.task.Deterministic && !callee.Deterministic {
			tc.errf(st.Pos, "deterministic task %q may only spawn deterministic tasks", tc.task.Name)
		}
		if !in.cov.CoversSet(sub) {
			if allFullySpecified(sub) && allFullySpecified(tc.declaredEffects(tc.task)) {
				tc.errf(st.Pos, "spawned task %q effects [%v] definitely not covered by covering effect %s",
					st.Task, sub, in.cov)
			} else {
				tc.warnf(st.Pos, "cannot prove spawned task %q effects [%v] covered; a run-time covering check will be performed (§3.1.5)",
					st.Task, sub)
			}
		}
		tc.spawnEff[s] = sub
		return flow{cov: in.cov.Sub(sub), refs: in.refs}

	case *Wait:
		fi, ok := tc.futures[st.Future]
		if !ok {
			tc.errf(st.Pos, "undefined future %q", st.Future)
			return in
		}
		if st.Join {
			if !fi.spawned {
				tc.errf(st.Pos, "join on %q: only spawned task futures support join", st.Future)
				return in
			}
			if tc.joins[st.Future] == nil {
				tc.joins[st.Future] = map[Stmt]bool{}
			}
			tc.joins[st.Future][s] = true
			// Effect transfer on join only when the effect parameter is
			// fully specified (§3.1.5).
			if allFullySpecified(fi.eff) {
				tc.joinEff[s] = fi.eff
				return flow{cov: in.cov.Add(fi.eff), refs: in.refs}
			}
			tc.warnf(st.Pos, "join on %q transfers no effects statically: effects [%v] are not fully specified (§3.1.5)",
				st.Future, fi.eff)
			return in
		}
		// getValue
		if tc.task.Deterministic {
			tc.errf(st.Pos, "deterministic task %q may not use getValue (§3.3.5)", tc.task.Name)
		}
		return in

	case *Call:
		callee, ok := tc.tasks[st.Task]
		if !ok {
			tc.errf(st.Pos, "undefined task %q", st.Task)
			return in
		}
		if len(st.Args) != len(callee.Params) {
			tc.errf(st.Pos, "task %q takes %d arguments, got %d", st.Task, len(callee.Params), len(st.Args))
		}
		if createsTasks(callee.Body) {
			tc.errf(st.Pos, "task %q creates or waits for tasks and cannot be called inline", st.Task)
		}
		if tc.task.Deterministic && !callee.Deterministic {
			tc.errf(st.Pos, "deterministic task %q may only call deterministic tasks inline", tc.task.Name)
		}
		tc.callees[st.Task] = true
		eff := tc.exprEffects(st.Args)
		// The call's effect is the callee's substituted summary — the
		// modular check of §2.3: the callee's body was verified against
		// its own summary, so the summary stands in for the body here.
		eff = eff.Union(tc.substitutedEffects(callee, st.Args, tc.params))
		tc.checkCovered(s, st.Pos, eff, in)
		return in

	case *RefOp:
		if !tc.refs[st.Ref] {
			tc.errf(st.Pos, "undeclared refvar %q", st.Ref)
			return in
		}
		out := in.clone()
		switch st.Op {
		case "addread", "addwrite":
			out.refs[st.Ref] = true
		case "assertinset":
			// The assertion is checked at run time; afterwards the static
			// analysis may assume membership (§7.2.7).
			out.refs[st.Ref] = true
		case "useref":
			if !in.refs[st.Ref] {
				tc.errf(st.Pos, "reference %q may not be in the task's dynamic effect set here (§7.2.6); add it or assertinset first", st.Ref)
			}
		}
		return out
	}
	tc.errf(s.Position(), "internal: unhandled statement %T", s)
	return in
}

// exprEffect computes the read effects of evaluating e.
func (tc *taskChecker) exprEffect(e Expr) effect.Set {
	switch v := e.(type) {
	case *Num:
		return effect.Pure
	case *Ident:
		if tc.params[v.Name] || tc.locals[v.Name] {
			return effect.Pure
		}
		if r, ok := tc.vars[v.Name]; ok {
			return effect.NewSet(effect.Read(r))
		}
		tc.errf(v.Pos, "undefined name %q", v.Name)
		return effect.Pure
	case *ArrayRead:
		idxEff := tc.exprEffect(v.Index)
		base, ok := tc.arrays[v.Name]
		if !ok {
			tc.errf(v.Pos, "undefined array %q", v.Name)
			return idxEff
		}
		elem := tc.resolveIndex(v.Index, tc.params)
		return idxEff.Union(effect.NewSet(effect.Read(base.Append(elem))))
	case *Binary:
		return tc.exprEffect(v.L).Union(tc.exprEffect(v.R))
	case *IsDone:
		if _, ok := tc.futures[v.Future]; !ok {
			tc.errf(v.Pos, "undefined future %q", v.Future)
		}
		if tc.task.Deterministic {
			tc.errf(v.Pos, "deterministic task %q may not use isdone: its result is schedule-dependent (§3.3.5)", tc.task.Name)
		}
		return effect.Pure
	}
	tc.errf(e.Position(), "internal: unhandled expression %T", e)
	return effect.Pure
}

// checkCovered verifies the effects of an operation against the current
// covering effect and records them for the CFG lowering.
func (tc *taskChecker) checkCovered(s Stmt, pos Pos, eff effect.Set, in flow) {
	if prev, ok := tc.accessEff[s]; ok {
		tc.accessEff[s] = prev.Union(eff)
	} else {
		tc.accessEff[s] = eff
	}
	if un := in.cov.UncoveredOf(eff); len(un) > 0 {
		tc.errf(pos, "effect %v not covered by current covering effect %s", un, in.cov)
	}
}

// exprEffects unions the read effects of an argument list.
func (tc *taskChecker) exprEffects(args []Expr) effect.Set {
	var out effect.Set
	for _, a := range args {
		out = out.Union(tc.exprEffect(a))
	}
	return out
}

// createsTasks reports whether a body contains task-creation or waiting
// operations, which inline-called tasks may not use.
func createsTasks(b *Block) bool {
	found := false
	var walk func(*Block)
	walk = func(blk *Block) {
		for _, s := range blk.Stmts {
			switch st := s.(type) {
			case *LetFuture, *Wait:
				found = true
			case *If:
				walk(st.Then)
				if st.Else != nil {
					walk(st.Else)
				}
			case *While:
				walk(st.Body)
			}
		}
	}
	walk(b)
	return found
}

// checkCallCycles rejects recursive inline calls (the runtime would not
// terminate; the paper's methods are ordinary Java methods where recursion
// is fine, but TWEL keeps inline calls non-recursive for decidability of
// the semantics' step bound).
func (c *checker) checkCallCycles() {
	edges := map[string][]string{}
	var collect func(task string, b *Block)
	collect = func(task string, b *Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Call:
				edges[task] = append(edges[task], st.Task)
			case *If:
				collect(task, st.Then)
				if st.Else != nil {
					collect(task, st.Else)
				}
			case *While:
				collect(task, st.Body)
			}
		}
	}
	for _, t := range c.prog.Tasks {
		collect(t.Name, t.Body)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		for _, m := range edges[n] {
			switch color[m] {
			case grey:
				return true
			case white:
				if dfs(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, t := range c.prog.Tasks {
		if color[t.Name] == white && dfs(t.Name) {
			c.errf(t.Pos, "inline call cycle involving task %q", t.Name)
			return
		}
	}
}

func allFullySpecified(s effect.Set) bool {
	for _, e := range s.Effects() {
		if !e.Region.FullySpecified() {
			return false
		}
	}
	return true
}

// --- CFG lowering and cross-validation (§4.3) -------------------------------

// crossValidate lowers the task body to a CFG, runs the iterative
// covering-effect analysis, and reports any access it flags that the
// structure-based analysis did not (and vice versa) as internal errors —
// the two must agree on the meet-over-paths solution.
func (tc *taskChecker) crossValidate(declared effect.Set) {
	g := dataflow.NewGraph()
	entry := g.NewBlock("body")
	g.Edge(g.Entry, entry)
	exit := tc.lower(g, entry, tc.task.Body)
	_ = exit
	res := dataflow.Solve(&dataflow.Problem{Graph: g, Declared: declared})

	structFlagged := map[string]bool{}
	for _, d := range tc.res.Errors {
		structFlagged[fmt.Sprintf("%v", d.Pos)] = true
	}
	for _, e := range res.Errors {
		pos := e.Block.Ops[e.OpIdx].Pos
		if pos == "" {
			continue
		}
		if !structFlagged[pos] {
			tc.errf(Pos{}, "internal: iterative analysis flags uncovered access at %s that the structure-based analysis missed", pos)
		}
	}
}

// lower appends b's statements to cur, returning the block control flow
// falls out of.
func (tc *taskChecker) lower(g *dataflow.Graph, cur *dataflow.Block, b *Block) *dataflow.Block {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *If:
			tc.appendAccess(cur, s)
			thenB := g.NewBlock("then")
			g.Edge(cur, thenB)
			thenOut := tc.lower(g, thenB, st.Then)
			merge := g.NewBlock("merge")
			g.Edge(thenOut, merge)
			if st.Else != nil {
				elseB := g.NewBlock("else")
				g.Edge(cur, elseB)
				elseOut := tc.lower(g, elseB, st.Else)
				g.Edge(elseOut, merge)
			} else {
				g.Edge(cur, merge)
			}
			cur = merge
		case *While:
			head := g.NewBlock("head")
			g.Edge(cur, head)
			tc.appendAccess(head, s)
			body := g.NewBlock("loop")
			g.Edge(head, body)
			bodyOut := tc.lower(g, body, st.Body)
			g.Edge(bodyOut, head)
			exit := g.NewBlock("exit")
			g.Edge(head, exit)
			cur = exit
		default:
			tc.appendAccess(cur, s)
			if sub, ok := tc.spawnEff[s]; ok {
				cur.Ops = append(cur.Ops, dataflow.Op{Kind: dataflow.Spawn, Eff: sub, Pos: posKey(s)})
			}
			if add, ok := tc.joinEff[s]; ok {
				cur.Ops = append(cur.Ops, dataflow.Op{Kind: dataflow.Join, Eff: add, Pos: posKey(s)})
			}
		}
	}
	return cur
}

func (tc *taskChecker) appendAccess(blk *dataflow.Block, s Stmt) {
	if eff, ok := tc.accessEff[s]; ok && !eff.IsPure() {
		blk.Ops = append(blk.Ops, dataflow.Op{Kind: dataflow.Access, Eff: eff, Pos: posKey(s)})
	}
}

func posKey(s Stmt) string { return fmt.Sprintf("%v", s.Position()) }
