package lang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twe/internal/core"
	"twe/internal/isolcheck"
	"twe/internal/lang"
	"twe/internal/naive"
	"twe/internal/semantics"
	"twe/internal/tree"
)

func schedFactories() map[string]func() core.Scheduler {
	return map[string]func() core.Scheduler{
		"naive": func() core.Scheduler { return naive.New() },
		"tree":  func() core.Scheduler { return tree.New() },
	}
}

// TestCompileCorpusOnRealRuntime compiles every good corpus program with a
// main task and runs it on both real schedulers with the isolation monitor
// attached.
func TestCompileCorpusOnRealRuntime(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.twel")
	for _, file := range files {
		if strings.HasPrefix(filepath.Base(file), "bad_") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog := lang.MustParse(string(src))
		if prog.Task("main") == nil {
			continue
		}
		for name, mk := range schedFactories() {
			t.Run(filepath.Base(file)+"/"+name, func(t *testing.T) {
				chk := isolcheck.New()
				rt := core.NewRuntime(mk(), 4, core.WithMonitor(chk))
				c, err := lang.Compile(prog, rt)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Run("main"); err != nil {
					t.Fatal(err)
				}
				rt.Shutdown()
				for _, v := range chk.Violations() {
					t.Error(v)
				}
			})
		}
	}
}

// TestCompiledMatchesInterpreter: for a deterministic TWEL program, the
// real runtime and the formal-semantics interpreter must compute the same
// final store.
func TestCompiledMatchesInterpreter(t *testing.T) {
	src := `
region A, B;
var total in B;
array a[8] in A;
deterministic task fill(i) effect writes A:[i] {
    a[i] = i * i + 1;
}
deterministic task fanout() effect writes A:* {
    let f0 = spawn fill(0);
    let f1 = spawn fill(1);
    let f2 = spawn fill(2);
    let f3 = spawn fill(3);
    join f0;
    join f1;
    join f2;
    join f3;
}
task main() effect writes A:*, B {
    let f = executeLater fanout();
    getValue f;
    local i = 0;
    while (i < 4) {
        total = total + a[i];
        local i = i + 1;
    }
}
`
	prog := lang.MustParse(src)
	in := semantics.New(prog, 7)
	in.Launch("main")
	if !in.Run(100000) {
		t.Fatal("interpreter stuck")
	}
	wantGlobals := in.Globals()
	wantArrays := in.Arrays()

	for name, mk := range schedFactories() {
		rt := core.NewRuntime(mk(), 4)
		c, err := lang.Compile(prog, rt)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run("main"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rt.Shutdown()
		g := c.Globals()
		for k, v := range wantGlobals {
			if g[k] != v {
				t.Fatalf("%s: global %s = %d, interpreter says %d", name, k, g[k], v)
			}
		}
		a := c.Arrays()
		for k, v := range wantArrays {
			for i := range v {
				if a[k][i] != v[i] {
					t.Fatalf("%s: %s[%d] = %d, interpreter says %d", name, k, i, a[k][i], v[i])
				}
			}
		}
	}
}

// TestCompileFuzzOnRealRuntime runs generated random programs end to end
// on the real tree scheduler with the monitor attached; under -race this
// is the strongest whole-system check in the repo.
func TestCompileFuzzOnRealRuntime(t *testing.T) {
	const programs = 15
	for p := int64(0); p < programs; p++ {
		prog := lang.GenerateRandomProgram(p + 500)
		chk := isolcheck.New()
		rt := core.NewRuntime(tree.New(), 4, core.WithMonitor(chk))
		c, err := lang.Compile(prog, rt)
		if err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		if err := c.Run("main"); err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		rt.Shutdown()
		for _, v := range chk.Violations() {
			t.Errorf("program %d: %v", p, v)
		}
	}
}

func TestCompileRejectsBadProgram(t *testing.T) {
	prog := lang.MustParse(`
region A, B;
var x in A;
task t() effect writes B { x = 1; }
`)
	rt := core.NewRuntime(tree.New(), 2)
	defer rt.Shutdown()
	if _, err := lang.Compile(prog, rt); err == nil {
		t.Fatal("ill-effected program compiled")
	}
}

func TestCompileRunUnknownTask(t *testing.T) {
	prog := lang.MustParse(`region A;`)
	rt := core.NewRuntime(tree.New(), 2)
	defer rt.Shutdown()
	c, err := lang.Compile(prog, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run("ghost"); err == nil {
		t.Fatal("unknown task accepted")
	}
}
