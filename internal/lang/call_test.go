package lang_test

import (
	"strings"
	"testing"

	"twe/internal/core"
	"twe/internal/lang"
	"twe/internal/semantics"
	"twe/internal/tree"
)

const callSrc = `
region A, B;
var x in A;
var y in B;

// A "method" with an effect summary (§2.3): verified against its own body,
// summarized at call sites.
task bumpX(by) effect reads A writes A {
    x = x + by;
}

task main() effect writes A, B {
    call bumpX(2);
    call bumpX(3);
    y = x;
}
`

func TestCallChecksAndRuns(t *testing.T) {
	prog := lang.MustParse(callSrc)
	if res := lang.Check(prog); !res.OK() {
		t.Fatalf("static: %v", res.Errors)
	}
	// Formal semantics.
	in := semantics.New(prog, 1)
	in.Launch("main")
	if !in.Run(10000) {
		t.Fatal("stuck")
	}
	for _, v := range in.Violations {
		t.Error(v)
	}
	if g := in.Globals(); g["x"] != 5 || g["y"] != 5 {
		t.Fatalf("globals %v", g)
	}
	// Real runtime.
	rt := core.NewRuntime(tree.New(), 2)
	defer rt.Shutdown()
	c, err := lang.Compile(prog, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run("main"); err != nil {
		t.Fatal(err)
	}
	if g := c.Globals(); g["x"] != 5 || g["y"] != 5 {
		t.Fatalf("compiled globals %v", g)
	}
}

func TestCallEffectNotCoveredRejected(t *testing.T) {
	prog := lang.MustParse(`
region A, B;
var x in A;
task writeX() effect writes A { x = 1; }
task caller() effect writes B {
    call writeX();
}
`)
	res := lang.Check(prog)
	if res.OK() {
		t.Fatal("call with uncovered effects accepted")
	}
}

func TestCallSubstitutesIndices(t *testing.T) {
	prog := lang.MustParse(`
region A;
array a[8] in A;
task setSlot(i) effect writes A:[i] { a[i] = 1; }
task two() effect writes A:[2] { call setSlot(2); }
task wrong() effect writes A:[3] { call setSlot(2); }
`)
	res := lang.Check(prog)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, "not covered") && e.Pos.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("call substitution not checked: %v", res.Errors)
	}
	// "two" (line 5) must be accepted: errors only inside "wrong" (line 6).
	for _, e := range res.Errors {
		if e.Pos.Line == 5 {
			t.Fatalf("correct call rejected: %v", e)
		}
	}
}

func TestCallRecursionRejected(t *testing.T) {
	prog := lang.MustParse(`
region A;
var x in A;
task pingpongA() effect writes A { call pingpongB(); }
task pingpongB() effect writes A { call pingpongA(); }
`)
	res := lang.Check(prog)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, "call cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("recursion not rejected: %v", res.Errors)
	}
}

func TestCallTaskCreatorRejected(t *testing.T) {
	prog := lang.MustParse(`
region A;
var x in A;
task other() effect pure { skip; }
task spawny() effect writes A {
    let f = executeLater other();
    getValue f;
}
task caller() effect writes A {
    call spawny();
}
`)
	res := lang.Check(prog)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, "cannot be called inline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("task-creating callee not rejected: %v", res.Errors)
	}
}

func TestCallScoping(t *testing.T) {
	// The callee must not see the caller's locals; its own locals must not
	// leak back.
	prog := lang.MustParse(`
region A;
var x in A;
task callee(v) effect writes A {
    local inner = v * 10;
    x = inner;
}
task main() effect writes A {
    local inner = 1;
    call callee(4);
    x = x + inner;   // caller's "inner" still 1
}
`)
	if res := lang.Check(prog); !res.OK() {
		t.Fatalf("%v", res.Errors)
	}
	in := semantics.New(prog, 5)
	in.Launch("main")
	if !in.Run(10000) {
		t.Fatal("stuck")
	}
	if g := in.Globals(); g["x"] != 41 {
		t.Fatalf("x = %d, want 41 (call scoping broken)", g["x"])
	}
	rt := core.NewRuntime(tree.New(), 2)
	defer rt.Shutdown()
	c, err := lang.Compile(prog, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run("main"); err != nil {
		t.Fatal(err)
	}
	if g := c.Globals(); g["x"] != 41 {
		t.Fatalf("compiled x = %d, want 41", g["x"])
	}
}

func TestCallInferredThroughCaller(t *testing.T) {
	prog := lang.MustParse(`
region A, B;
var x in A;
task helper() effect writes A { x = 1; }
task caller() effect writes A, B {
    call helper();
}
`)
	inferred := lang.Infer(prog)["caller"]
	if inferred.String() != "writes Root:A" {
		t.Fatalf("inferred caller effects %v, want writes Root:A", inferred)
	}
}

func TestCallFormatRoundTrip(t *testing.T) {
	prog := lang.MustParse(callSrc)
	out := lang.Format(prog)
	if !strings.Contains(out, "call bumpX(2);") {
		t.Fatalf("call not printed:\n%s", out)
	}
	again := lang.MustParse(out)
	if lang.Format(again) != out {
		t.Fatal("printer not a fixpoint with calls")
	}
}

func TestCallDeterministicRestriction(t *testing.T) {
	prog := lang.MustParse(`
region A;
var x in A;
task plain() effect writes A { x = 1; }
deterministic task det() effect writes A {
    call plain();
}
`)
	res := lang.Check(prog)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, "call deterministic tasks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-deterministic inline callee accepted in deterministic task: %v", res.Errors)
	}
}
