package lang

import (
	"strings"
	"testing"
)

func check(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func wantOK(t *testing.T, src string) *Result {
	t.Helper()
	res := check(t, src)
	for _, e := range res.Errors {
		t.Errorf("unexpected error: %v", e)
	}
	return res
}

func wantError(t *testing.T, src, substr string) {
	t.Helper()
	res := check(t, src)
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, substr) {
			return
		}
	}
	t.Fatalf("expected error containing %q, got %v", substr, res.Errors)
}

func wantWarning(t *testing.T, res *Result, substr string) {
	t.Helper()
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, substr) {
			return
		}
	}
	t.Fatalf("expected warning containing %q, got %v", substr, res.Warnings)
}

// imageEditSrc mirrors the paper's Fig. 3.2 increaseContrast example.
const imageEditSrc = `
region Top, Bottom;
var topSum in Top;
var bottomSum in Bottom;

task increaseTop() effect writes Top {
    topSum = topSum + 1;
}

task increaseContrast() effect writes Top, Bottom {
    let f = spawn increaseTop();
    bottomSum = bottomSum + 1;   // covered: writes Top was transferred away
    join f;
    topSum = topSum + 1;         // covered again after join
}
`

func TestIncreaseContrastExample(t *testing.T) {
	wantOK(t, imageEditSrc)
}

func TestAccessAfterSpawnRejected(t *testing.T) {
	wantError(t, `
region Top, Bottom;
var topSum in Top;
task child() effect writes Top { topSum = 1; }
task parent() effect writes Top, Bottom {
    let f = spawn child();
    topSum = 2;   // conflicts with transferred writes Top
    join f;
}
`, "not covered")
}

func TestUndeclaredEffectRejected(t *testing.T) {
	wantError(t, `
region A, B;
var x in A;
task t() effect writes B { x = 1; }
`, "not covered")
}

func TestReadCoveredByWrite(t *testing.T) {
	wantOK(t, `
region A;
var x in A;
task t() effect writes A { x = x + 1; }
`)
}

func TestBranchMeet(t *testing.T) {
	// Spawn on one branch only: after the merge the effect is unavailable.
	wantError(t, `
region A, B;
var x in A;
task child() effect writes A { x = 1; }
task parent(c) effect writes A, B {
    if (c < 1) {
        let f = spawn child();
        join f;
    } else {
        let g = spawn child();
        // no join on this path before the merge... but implicit join
        // semantics are dynamic; statically g's effect stays transferred.
    }
    x = 3;
}
`, "not covered")

	// Joining on both branches restores the effect.
	wantOK(t, `
region A, B;
var x in A;
task child() effect writes A { x = 1; }
task parent(c) effect writes A, B {
    if (c < 1) {
        let f = spawn child();
        join f;
    } else {
        let g = spawn child();
        join g;
    }
    x = 3;
}
`)
}

func TestLoopCarriedSubtraction(t *testing.T) {
	wantError(t, `
region A;
var x in A;
task child() effect writes A { x = 1; }
task parent(n) effect writes A {
    local i = 0;
    while (i < n) {
        x = 2;               // uncovered from iteration 2 on
        let f = spawn child();
        local i = i + 1;
    }
}
`, "not covered")

	wantOK(t, `
region A;
var x in A;
task child() effect writes A { x = 1; }
task parent(n) effect writes A {
    local i = 0;
    while (i < n) {
        x = 2;
        let f = spawn child();
        join f;
        local i = i + 1;
    }
}
`)
}

func TestIndexParameterizedArrays(t *testing.T) {
	// KMeans-style: accumulate task writes cluster [c]; distinct constant
	// indices are disjoint.
	wantOK(t, `
region Clusters;
array centers[10] in Clusters;
task acc(c) effect writes Clusters:[c] {
    centers[c] = centers[c] + 1;
}
task two() effect writes Clusters:[1], Clusters:[2] {
    let f = spawn acc(1);
    centers[2] = 5;   // disjoint from transferred [1]
    join f;
}
`)

	wantError(t, `
region Clusters;
array centers[10] in Clusters;
task acc(c) effect writes Clusters:[c] {
    centers[c] = centers[c] + 1;
    centers[c+1] = 0;   // [?] not covered by [c]
}
`, "not covered")
}

func TestUnknownIndexNeedsWildcard(t *testing.T) {
	wantOK(t, `
region A;
array a[4] in A;
task t(i) effect writes A:[?] {
    a[i*2] = 1;   // unknown index covered by [?]
}
`)
	wantOK(t, `
region A;
array a[4] in A;
task t(i) effect writes A:* {
    a[i*2] = 1;
}
`)
}

func TestSpawnRuntimeCheckWarning(t *testing.T) {
	// Spawning tasks on loop-dependent indices cannot be proven covered
	// statically; the paper inserts a run-time check (§3.1.5).
	res := wantOK(t, `
region A;
array a[8] in A;
task worker(i) effect writes A:[i] {
    a[i] = 1;
}
task driver(n) effect writes A:* {
    local i = 0;
    while (i < n) {
        let f = spawn worker(i);
        join f;
        local i = i + 1;
    }
}
`)
	_ = res
}

func TestDefinitelyUncoveredSpawnError(t *testing.T) {
	wantError(t, `
region A, B;
var x in B;
task child() effect writes B { x = 1; }
task parent() effect writes A {
    let f = spawn child();
}
`, "definitely not covered")
}

func TestJoinTransferOnlyWhenFullySpecified(t *testing.T) {
	res := wantOK(t, `
region A;
array a[8] in A;
task worker(i) effect writes A:[i] {
    a[i] = 1;
}
task driver(j) effect writes A:* {
    let f = spawn worker(j*2);   // substituted effect A:[?]: not fully specified
    join f;
}
`)
	wantWarning(t, res, "transfers no effects statically")
}

func TestDeterministicRestrictions(t *testing.T) {
	wantError(t, `
region A;
var x in A;
task other() effect pure { skip; }
deterministic task det() effect writes A {
    let f = executeLater other();
}
`, "executeLater")

	wantError(t, `
region A;
var x in A;
task helper() effect writes A { x = 1; }
deterministic task det() effect writes A {
    let f = spawn helper();
    join f;
}
`, "deterministic tasks")
}

func TestDeterministicSpawnDeterministicOK(t *testing.T) {
	wantOK(t, `
region A;
var x in A;
deterministic task helper() effect writes A { x = 1; }
deterministic task det() effect writes A {
    let f = spawn helper();
    join f;
}
`)
}

func TestJoinMisuse(t *testing.T) {
	wantError(t, `
region A;
task child() effect pure { skip; }
task parent() effect writes A {
    let f = executeLater child();
    join f;
}
`, "only spawned")

	wantError(t, `
region A;
task parent() effect writes A {
    getValue nosuch;
}
`, "undefined future")
}

func TestDoubleJoinWarning(t *testing.T) {
	res := wantOK(t, `
region A;
task child() effect pure { skip; }
task parent() effect writes A {
    let f = spawn child();
    join f;
    join f;
}
`)
	wantWarning(t, res, "joined on 2 paths")
}

func TestDynamicRefSets(t *testing.T) {
	wantOK(t, `
refvar r;
task t() effect pure {
    addread r;
    useref r;
}
`)
	wantError(t, `
refvar r;
task t() effect pure {
    useref r;
}
`, "may not be in the task's dynamic effect set")

	// assertinset establishes membership for the analysis (§7.2.7).
	wantOK(t, `
refvar r;
task t() effect pure {
    assertinset r;
    useref r;
}
`)

	// Must-analysis: membership established on only one branch is lost at
	// the merge.
	wantError(t, `
refvar r;
task t(c) effect pure {
    if (c < 1) {
        addwrite r;
    }
    useref r;
}
`, "may not be in")

	// Established on both branches: fine.
	wantOK(t, `
refvar r;
task t(c) effect pure {
    if (c < 1) {
        addwrite r;
    } else {
        addread r;
    }
    useref r;
}
`)
}

func TestNameResolutionErrors(t *testing.T) {
	wantError(t, `
task t() effect writes Nowhere { skip; }
`, "undeclared region")
	wantError(t, `
region A;
task t() effect writes A { x = 1; }
`, "undefined variable")
	wantError(t, `
region A;
task t() effect writes A { a[0] = 1; }
`, "undefined array")
	wantError(t, `
region A;
task t() effect writes A {
    let f = executeLater nosuch();
}
`, "undefined task")
	wantError(t, `
refvar r;
task t() effect pure { addread s; }
`, "undeclared refvar")
	wantError(t, `
region A;
var x in A;
task t(i, i) effect writes A { skip; }
`, "duplicate parameter")
	wantError(t, `
region A;
task t(n) effect writes A {
    let f = executeLater t();
}
`, "takes 1 arguments")
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"task",
		"region ;",
		"task t() effect { }",
		"task t() effect pure { x = ; }",
		"task t() effect pure { if x { } }",
		"var x in 3;",
		"array a[x] in A;",
		"task t() effect pure { let f = frobnicate t2(); }",
		"task t() effect pure { skip; ",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseRoundTripStructure(t *testing.T) {
	prog := MustParse(imageEditSrc)
	if len(prog.Regions) != 2 || len(prog.Vars) != 2 || len(prog.Tasks) != 2 {
		t.Fatalf("unexpected decl counts: %+v", prog)
	}
	ic := prog.Task("increaseContrast")
	if ic == nil || len(ic.Body.Stmts) != 4 {
		t.Fatalf("increaseContrast body wrong: %+v", ic)
	}
	if prog.Task("nosuch") != nil {
		t.Fatal("Task lookup of missing task")
	}
}

func TestCommentsAndOperators(t *testing.T) {
	wantOK(t, `
// leading comment
region A;
var x in A; // trailing comment
task t(n) effect writes A {
    local y = (n + 2) * 3 - 4 / 2 % 3;
    if (y <= 10) { x = 1; } else { x = 2; }
    if (y >= 0) { skip; }
    if (y == 0) { skip; }
    if (y != 0) { skip; }
}
`)
}
