package lang

import (
	"errors"
	"fmt"

	"twe/internal/core"
)

// Compiled is a TWEL program lowered onto the real TWE runtime: the
// counterpart of the TWEJava compiler's code generation (§3.4.1). Globals
// live in plain, unsynchronized Go memory — the scheduler's task isolation
// is the only thing standing between the generated code and data races,
// which is exactly the property the end-to-end tests (run under -race)
// certify.
type Compiled struct {
	prog    *Program
	rt      *core.Runtime
	globals map[string]*int
	arrays  map[string][]int
}

// Compile prepares prog to run on rt. The program must have passed Check;
// Compile re-runs it and refuses ill-effected programs.
func Compile(prog *Program, rt *core.Runtime) (*Compiled, error) {
	if res := Check(prog); !res.OK() {
		return nil, fmt.Errorf("lang: program fails static checks: %v", res.Errors[0])
	}
	c := &Compiled{
		prog:    prog,
		rt:      rt,
		globals: map[string]*int{},
		arrays:  map[string][]int{},
	}
	for _, v := range prog.Vars {
		c.globals[v.Name] = new(int)
	}
	for _, a := range prog.Arrays {
		c.arrays[a.Name] = make([]int, a.Size)
	}
	return c, nil
}

// Globals snapshots the scalar store. Quiescent use only.
func (c *Compiled) Globals() map[string]int {
	out := map[string]int{}
	for k, p := range c.globals {
		out[k] = *p
	}
	return out
}

// Arrays snapshots the array store. Quiescent use only.
func (c *Compiled) Arrays() map[string][]int {
	out := map[string][]int{}
	for k, v := range c.arrays {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// Run launches the named task with the given arguments and waits for it.
func (c *Compiled) Run(task string, args ...int) error {
	decl := c.prog.Task(task)
	if decl == nil {
		return fmt.Errorf("lang: no task %q", task)
	}
	_, err := c.rt.Run(c.mkTask(decl, args), nil)
	return err
}

// mkTask instantiates one execution of decl: the dynamic RPLs of its
// effect summary are computed from the concrete arguments, as the TWEJava
// compiler's generated code does at task-creation time (§3.4.1).
func (c *Compiled) mkTask(decl *TaskDecl, args []int) *core.Task {
	return &core.Task{
		Name:          decl.Name,
		Eff:           DynamicEffects(decl, args),
		Deterministic: decl.Deterministic,
		Body: func(ctx *core.Ctx, _ any) (any, error) {
			ex := &executor{c: c, ctx: ctx, env: map[string]int{}, futures: map[string]*futureHandle{}}
			for i, p := range decl.Params {
				if i < len(args) {
					ex.env[p] = args[i]
				}
			}
			return nil, ex.block(decl.Body)
		},
	}
}

// futureHandle remembers how a future was created so Wait picks the right
// operation.
type futureHandle struct {
	fut     *core.Future
	spawned *core.SpawnedFuture
}

type executor struct {
	c       *Compiled
	ctx     *core.Ctx
	env     map[string]int
	futures map[string]*futureHandle
}

var errOutOfRange = errors.New("lang: array index out of range")

func (ex *executor) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := ex.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Skip, *RefOp:
		return nil
	case *LocalDecl:
		v, err := ex.eval(st.Value)
		if err != nil {
			return err
		}
		ex.env[st.Name] = v
		return nil
	case *AssignVar:
		v, err := ex.eval(st.Value)
		if err != nil {
			return err
		}
		if _, isLocal := ex.env[st.Name]; isLocal {
			ex.env[st.Name] = v
			return nil
		}
		if p, ok := ex.c.globals[st.Name]; ok {
			*p = v // unsynchronized by design; isolation protects it
			return nil
		}
		return fmt.Errorf("lang: unknown variable %q", st.Name)
	case *AssignArray:
		idx, err := ex.eval(st.Index)
		if err != nil {
			return err
		}
		v, err := ex.eval(st.Value)
		if err != nil {
			return err
		}
		arr := ex.c.arrays[st.Name]
		if idx < 0 || idx >= len(arr) {
			return fmt.Errorf("%w: %s[%d]", errOutOfRange, st.Name, idx)
		}
		arr[idx] = v
		return nil
	case *If:
		v, err := ex.eval(st.Cond)
		if err != nil {
			return err
		}
		if v != 0 {
			return ex.block(st.Then)
		}
		if st.Else != nil {
			return ex.block(st.Else)
		}
		return nil
	case *While:
		for {
			v, err := ex.eval(st.Cond)
			if err != nil {
				return err
			}
			if v == 0 {
				return nil
			}
			if err := ex.block(st.Body); err != nil {
				return err
			}
		}
	case *LetFuture:
		decl := ex.c.prog.Task(st.Task)
		args := make([]int, len(st.Args))
		for i, a := range st.Args {
			v, err := ex.eval(a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		task := ex.c.mkTask(decl, args)
		if st.Spawn {
			sf, err := ex.ctx.Spawn(task, nil)
			if err != nil {
				return err
			}
			ex.futures[st.Name] = &futureHandle{fut: sf.Future(), spawned: sf}
			return nil
		}
		fut, err := ex.ctx.ExecuteLater(task, nil)
		if err != nil {
			return err
		}
		ex.futures[st.Name] = &futureHandle{fut: fut}
		return nil
	case *Call:
		decl := ex.c.prog.Task(st.Task)
		env := map[string]int{}
		for i, p := range decl.Params {
			if i < len(st.Args) {
				v, err := ex.eval(st.Args[i])
				if err != nil {
					return err
				}
				env[p] = v
			}
		}
		callee := &executor{c: ex.c, ctx: ex.ctx, env: env, futures: map[string]*futureHandle{}}
		return callee.block(decl.Body)
	case *Wait:
		h, ok := ex.futures[st.Future]
		if !ok {
			return fmt.Errorf("lang: unknown future %q", st.Future)
		}
		if st.Join {
			if h.spawned == nil {
				return fmt.Errorf("lang: join on non-spawned future %q", st.Future)
			}
			_, err := ex.ctx.Join(h.spawned)
			return err
		}
		_, err := ex.ctx.GetValue(h.fut)
		return err
	}
	return fmt.Errorf("lang: unhandled statement %T", s)
}

func (ex *executor) eval(e Expr) (int, error) {
	switch v := e.(type) {
	case *Num:
		return v.Value, nil
	case *Ident:
		if val, ok := ex.env[v.Name]; ok {
			return val, nil
		}
		if p, ok := ex.c.globals[v.Name]; ok {
			return *p, nil
		}
		return 0, fmt.Errorf("lang: unknown name %q", v.Name)
	case *IsDone:
		h, ok := ex.futures[v.Future]
		if !ok {
			return 0, fmt.Errorf("lang: unknown future %q", v.Future)
		}
		return boolInt(h.fut.IsDone()), nil
	case *ArrayRead:
		idx, err := ex.eval(v.Index)
		if err != nil {
			return 0, err
		}
		arr := ex.c.arrays[v.Name]
		if idx < 0 || idx >= len(arr) {
			return 0, fmt.Errorf("%w: %s[%d]", errOutOfRange, v.Name, idx)
		}
		return arr[idx], nil
	case *Binary:
		a, err := ex.eval(v.L)
		if err != nil {
			return 0, err
		}
		b, err := ex.eval(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, nil
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, nil
			}
			return a % b, nil
		case "<":
			return boolInt(a < b), nil
		case "<=":
			return boolInt(a <= b), nil
		case ">":
			return boolInt(a > b), nil
		case ">=":
			return boolInt(a >= b), nil
		case "==":
			return boolInt(a == b), nil
		case "!=":
			return boolInt(a != b), nil
		}
	}
	return 0, fmt.Errorf("lang: unhandled expression %T", e)
}
