package lang

import "fmt"

// Parse parses a TWEL program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	i    int
}

type parseError struct {
	pos Pos
	msg string
}

func (e *parseError) Error() string { return fmt.Sprintf("twel:%v: %s", e.pos, e.msg) }

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &parseError{pos: p.cur().pos, msg: fmt.Sprintf(format, args...)}
}

func (p *parser) accept(text string) bool {
	if p.cur().kind != tokEOF && p.cur().text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %v", text, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, Pos, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", t.pos, p.errf("expected identifier, found %v", t)
	}
	p.i++
	return t.text, t.pos, nil
}

var keywords = map[string]bool{
	"region": true, "var": true, "array": true, "refvar": true,
	"task": true, "deterministic": true, "effect": true,
	"reads": true, "writes": true, "pure": true, "in": true,
	"local": true, "if": true, "else": true, "while": true,
	"let": true, "executeLater": true, "spawn": true,
	"getValue": true, "join": true, "skip": true,
	"addread": true, "addwrite": true, "assertinset": true, "useref": true,
	"isdone": true, "call": true,
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		switch p.cur().text {
		case "region":
			p.i++
			for {
				name, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				prog.Regions = append(prog.Regions, name)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "var":
			p.i++
			name, pos, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("in"); err != nil {
				return nil, err
			}
			r, err := p.rpl()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, &VarDecl{Name: name, Region: r, Pos: pos})
		case "array":
			p.i++
			name, pos, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("["); err != nil {
				return nil, err
			}
			if p.cur().kind != tokNum {
				return nil, p.errf("expected array size, found %v", p.cur())
			}
			size := p.next().num
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if err := p.expect("in"); err != nil {
				return nil, err
			}
			r, err := p.rpl()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, &ArrayDecl{Name: name, Size: size, Region: r, Pos: pos})
		case "refvar":
			p.i++
			name, pos, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.RefVars = append(prog.RefVars, &RefVarDecl{Name: name, Pos: pos})
		case "task", "deterministic":
			t, err := p.taskDecl()
			if err != nil {
				return nil, err
			}
			prog.Tasks = append(prog.Tasks, t)
		default:
			return nil, p.errf("expected declaration, found %v", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) taskDecl() (*TaskDecl, error) {
	det := p.accept("deterministic")
	pos := p.cur().pos
	if err := p.expect("task"); err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	if !p.accept(")") {
		for {
			pn, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			params = append(params, pn)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("effect"); err != nil {
		return nil, err
	}
	effs, err := p.effects()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &TaskDecl{Name: name, Params: params, Deterministic: det, Effects: effs, Body: body, Pos: pos}, nil
}

func (p *parser) effects() ([]*EffectItem, error) {
	if p.accept("pure") {
		return nil, nil
	}
	var items []*EffectItem
	for p.cur().text == "reads" || p.cur().text == "writes" {
		write := p.next().text == "writes"
		for {
			pos := p.cur().pos
			r, err := p.rpl()
			if err != nil {
				return nil, err
			}
			items = append(items, &EffectItem{Write: write, Region: r, Pos: pos})
			if !p.accept(",") {
				break
			}
		}
	}
	if len(items) == 0 {
		return nil, p.errf("expected effect summary (reads/writes/pure), found %v", p.cur())
	}
	return items, nil
}

// rpl parses "Root", "A:B:[e]:*:[?]" etc. Bare element lists are
// Root-implicit, as in the paper.
func (p *parser) rpl() (*RPLExpr, error) {
	r := &RPLExpr{Pos: p.cur().pos}
	first := true
	for {
		switch {
		case p.cur().kind == tokIdent && p.cur().text == "Root" && first:
			p.i++ // implicit root, no element stored
		case p.cur().kind == tokIdent && !keywords[p.cur().text]:
			r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemName, Name: p.next().text})
		case p.cur().text == "*":
			p.i++
			r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemStar})
		case p.cur().text == "[":
			p.i++
			if p.accept("?") {
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemAnyIdx})
				break
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemIndex, Index: e})
		default:
			return nil, p.errf("expected RPL element, found %v", p.cur())
		}
		first = false
		if !p.accept(":") {
			return r, nil
		}
	}
}

func (p *parser) block() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.text {
	case "skip":
		p.i++
		return &Skip{Pos: t.pos}, p.expect(";")
	case "local":
		p.i++
		name, pos, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &LocalDecl{Name: name, Value: v, Pos: pos}, p.expect(";")
	case "if":
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els *Block
		if p.accept("else") {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: t.pos}, nil
	case "while":
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: t.pos}, nil
	case "let":
		p.i++
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		spawn := false
		switch {
		case p.accept("spawn"):
			spawn = true
		case p.accept("executeLater"):
		default:
			return nil, p.errf("expected executeLater or spawn, found %v", p.cur())
		}
		taskName, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []Expr
		if !p.accept(")") {
			for {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		return &LetFuture{Name: name, Spawn: spawn, Task: taskName, Args: args, Pos: t.pos}, p.expect(";")
	case "call":
		p.i++
		taskName, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var args []Expr
		if !p.accept(")") {
			for {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		return &Call{Task: taskName, Args: args, Pos: t.pos}, p.expect(";")
	case "getValue", "join":
		p.i++
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Wait{Join: t.text == "join", Future: name, Pos: t.pos}, p.expect(";")
	case "addread", "addwrite", "assertinset", "useref":
		p.i++
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &RefOp{Op: t.text, Ref: name, Pos: t.pos}, p.expect(";")
	}
	// assignment: IDENT = expr | IDENT [ expr ] = expr
	if t.kind != tokIdent || keywords[t.text] {
		return nil, p.errf("expected statement, found %v", t)
	}
	p.i++
	if p.accept("[") {
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &AssignArray{Name: t.text, Index: idx, Value: v, Pos: t.pos}, p.expect(";")
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	v, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &AssignVar{Name: t.text, Value: v, Pos: t.pos}, p.expect(";")
}

// expression parses comparisons over additive over multiplicative terms.
func (p *parser) expression() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().text
		switch op {
		case "<", "<=", ">", ">=", "==", "!=":
			pos := p.next().pos
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r, Pos: pos}
		default:
			return l, nil
		}
	}
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().text
		if op != "+" && op != "-" {
			return l, nil
		}
		pos := p.next().pos
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().text
		if op != "*" && op != "/" && op != "%" {
			return l, nil
		}
		pos := p.next().pos
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.i++
		return &Num{Value: t.num, Pos: t.pos}, nil
	case t.text == "isdone":
		p.i++
		name, pos, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &IsDone{Future: name, Pos: pos}, nil
	case t.text == "(":
		p.i++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.kind == tokIdent && !keywords[t.text]:
		p.i++
		if p.accept("[") {
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &ArrayRead{Name: t.text, Index: idx, Pos: t.pos}, nil
		}
		return &Ident{Name: t.text, Pos: t.pos}, nil
	default:
		return nil, p.errf("expected expression, found %v", t)
	}
}
