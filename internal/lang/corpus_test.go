package lang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twe/internal/lang"
	"twe/internal/semantics"
)

// TestCorpus checks every testdata program: files prefixed bad_ must fail
// the static checks, all others must pass them AND run cleanly under the
// formal semantics across many schedules (when they declare a main task).
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.twel")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res := lang.Check(prog)
			if strings.HasPrefix(filepath.Base(file), "bad_") {
				if res.OK() {
					t.Fatal("ill-effected program passed the static checks")
				}
				return
			}
			if !res.OK() {
				t.Fatalf("static errors: %v", res.Errors)
			}
			if prog.Task("main") == nil {
				return // library-style corpus entry; static checks suffice
			}
			for seed := int64(0); seed < 10; seed++ {
				in := semantics.New(prog, seed)
				if _, err := in.Launch("main"); err != nil {
					t.Fatal(err)
				}
				if !in.Run(500000) {
					t.Fatalf("seed %d: did not quiesce", seed)
				}
				for _, v := range in.Violations {
					t.Errorf("seed %d: %v", seed, v)
				}
			}
		})
	}
}

func TestIsDoneExpression(t *testing.T) {
	prog := lang.MustParse(`
region A, B;
var x in A;
task slow() effect writes A { x = 1; }
task main() effect writes B {
    let f = executeLater slow();
    local d = isdone f;
    getValue f;
    local d2 = isdone f;
}
`)
	if res := lang.Check(prog); !res.OK() {
		t.Fatalf("%v", res.Errors)
	}
	in := semantics.New(prog, 3)
	in.Launch("main")
	if !in.Run(10000) {
		t.Fatal("stuck")
	}
	if len(in.Violations) != 0 {
		t.Fatalf("%v", in.Violations)
	}
}

func TestIsDoneRejectedInDeterministic(t *testing.T) {
	prog := lang.MustParse(`
region A;
var x in A;
deterministic task child() effect writes A { x = 1; }
deterministic task main() effect writes A {
    let f = spawn child();
    local d = isdone f;
    join f;
}
`)
	res := lang.Check(prog)
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Msg, "isdone") {
			found = true
		}
	}
	if !found {
		t.Fatalf("isdone in deterministic task not rejected: %v", res.Errors)
	}
}

func TestIsDoneUndefinedFuture(t *testing.T) {
	prog := lang.MustParse(`
region A;
task main() effect writes A {
    local d = isdone ghost;
}
`)
	if res := lang.Check(prog); res.OK() {
		t.Fatal("isdone on undefined future accepted")
	}
}
