package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twe/internal/effect"
)

func inferOf(t *testing.T, src, task string) effect.Set {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Infer(prog)[task]
}

func TestInferSimpleAccesses(t *testing.T) {
	got := inferOf(t, `
region A, B;
var x in A;
var y in B;
task t() effect writes A, B {
    x = y + 1;
}
`, "t")
	want := effect.MustParse("writes A reads B")
	if !got.Equal(want) {
		t.Fatalf("inferred %v, want %v", got, want)
	}
}

func TestInferArrayIndices(t *testing.T) {
	got := inferOf(t, `
region A;
array a[8] in A;
task t(i) effect writes A:* {
    a[0] = a[i] + a[i*2];
}
`, "t")
	want := effect.MustParse("writes A:[0] reads A:[i], A:[?]")
	if !got.Equal(want) {
		t.Fatalf("inferred %v, want %v", got, want)
	}
}

func TestInferIncludesSpawnedEffects(t *testing.T) {
	src := `
region A, B;
var x in A;
var y in B;
task child(k) effect writes A { x = k; }
task parent() effect writes A, B {
    let f = spawn child(1);
    y = 2;
    join f;
}
`
	got := inferOf(t, src, "parent")
	if !got.CoversEffect(effect.MustParse("writes A").At(0)) {
		t.Fatalf("parent must include spawned child's writes A: %v", got)
	}
	if !got.CoversEffect(effect.MustParse("writes B").At(0)) {
		t.Fatalf("parent must include its own writes B: %v", got)
	}
}

func TestInferExcludesExecuteLater(t *testing.T) {
	got := inferOf(t, `
region A, B;
var x in A;
task worker() effect writes A { x = 1; }
task driver() effect writes B {
    let f = executeLater worker();
    getValue f;
}
`, "driver")
	if got.InterferesWithEffect(effect.MustParse("writes A").At(0)) {
		t.Fatalf("executeLater must not contribute effects: %v", got)
	}
}

func TestInferRecursiveSpawnConverges(t *testing.T) {
	// A recursive spawn whose index argument shifts each level: inference
	// must widen to [?] rather than diverge.
	got := inferOf(t, `
region A;
array a[8] in A;
task rec(i) effect writes A:* {
    a[i] = 1;
    if (i < 7) {
        let f = spawn rec(i + 1);
        join f;
    }
}
`, "rec")
	if !got.CoversEffect(effect.MustParse("writes A:[?]").At(0)) {
		t.Fatalf("recursion should widen to writes A:[?]: %v", got)
	}
}

func TestInferredIsSubsetOfDeclaredOnCorpus(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.twel")
	for _, file := range files {
		if strings.HasPrefix(filepath.Base(file), "bad_") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog := MustParse(string(src))
		if findings := Audit(prog); len(findings) != 0 {
			t.Errorf("%s: declared effects fail to cover inferred ones: %+v", file, findings)
		}
	}
}

func TestAuditFlagsUnsoundDeclaration(t *testing.T) {
	prog := MustParse(`
region A, B;
var x in A;
task liar() effect writes B { x = 1; }
`)
	findings := Audit(prog)
	if len(findings) != 1 || findings[0].Task != "liar" || len(findings[0].Missing) == 0 {
		t.Fatalf("audit should flag the lying summary: %+v", findings)
	}
}

func TestInferredEffectsPassChecker(t *testing.T) {
	// Substituting the inferred summaries for the declared ones must yield
	// a program the checker accepts (inference is sound wrt the checker),
	// for straight-line bodies without joins.
	src := `
region A, B;
var x in A;
array a[4] in B;
task t(i) effect writes A, B:* {
    x = x + 1;
    a[i] = x;
}
`
	prog := MustParse(src)
	inferred := Infer(prog)["t"]
	// Rebuild the program with the inferred effects spliced in, using
	// TWEL's whitespace-separated clause syntax.
	var clauses []string
	for _, e := range inferred.Effects() {
		kw := "reads"
		if e.Write {
			kw = "writes"
		}
		clauses = append(clauses, kw+" "+e.Region.String())
	}
	prog2 := MustParse(strings.Replace(src,
		"effect writes A, B:*",
		"effect "+strings.Join(clauses, " "), 1))
	if res := Check(prog2); !res.OK() {
		t.Fatalf("inferred summary rejected by checker: %v (summary %v)", res.Errors, inferred)
	}
}
