package lang

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNum
	tokPunct // single/double-char punctuation, in tok.text
)

type token struct {
	kind tokenKind
	text string
	num  int
	pos  Pos
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNum:
		return strconv.Itoa(t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src. Comments run from "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	runes := []rune(src)
	i := 0
	advance := func() {
		if runes[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		i++
	}
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == '/' && i+1 < len(runes) && runes[i+1] == '/':
			for i < len(runes) && runes[i] != '\n' {
				advance()
			}
		case unicode.IsSpace(r):
			advance()
		case unicode.IsLetter(r) || r == '_':
			start := i
			pos := Pos{line, col}
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				advance()
			}
			toks = append(toks, token{kind: tokIdent, text: string(runes[start:i]), pos: pos})
		case unicode.IsDigit(r):
			start := i
			pos := Pos{line, col}
			for i < len(runes) && unicode.IsDigit(runes[i]) {
				advance()
			}
			n, err := strconv.Atoi(string(runes[start:i]))
			if err != nil {
				return nil, fmt.Errorf("%v: bad number: %v", pos, err)
			}
			toks = append(toks, token{kind: tokNum, num: n, pos: pos})
		default:
			pos := Pos{line, col}
			// two-char operators
			if i+1 < len(runes) {
				two := string(runes[i : i+2])
				switch two {
				case "<=", ">=", "==", "!=":
					advance()
					advance()
					toks = append(toks, token{kind: tokPunct, text: two, pos: pos})
					continue
				}
			}
			switch r {
			case '(', ')', '{', '}', '[', ']', ';', ',', ':', '=', '*', '+', '-', '/', '%', '<', '>', '?':
				advance()
				toks = append(toks, token{kind: tokPunct, text: string(r), pos: pos})
			default:
				return nil, fmt.Errorf("%v: unexpected character %q", pos, string(r))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: Pos{line, col}})
	return toks, nil
}
