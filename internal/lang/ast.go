// Package lang implements TWEL, a small imperative tasks-with-effects
// language that plays the role TWEJava plays in the paper: a concrete
// program text on which the *static* half of the TWE model runs. It
// provides a lexer, a parser, and a static checker implementing:
//
//   - region and effect declarations with the DPJ-style RPL forms,
//     including parameter-indexed elements (Ch. 2);
//   - the covering-effect analysis, in both the structure-based form the
//     TWEJava compiler uses (§4.4) and — for cross-validation — a lowering
//     to the CFG-based iterative analysis of §4.3 (package dataflow);
//   - the @Deterministic restriction (§3.3.5);
//   - the dynamic-reference-set must-analysis of the dynamic-effects
//     extension (§7.2.6–7.2.7).
//
// Grammar (informal):
//
//	program   := decl*
//	decl      := "region" IDENT ("," IDENT)* ";"
//	           | "var" IDENT "in" rpl ";"
//	           | "array" IDENT "[" NUM "]" "in" rpl ";"
//	           | "refvar" IDENT ";"
//	           | ("deterministic")? "task" IDENT "(" params? ")"
//	             "effect" effects block
//	effects   := (("reads"|"writes") rpl ("," rpl)*)+ | "pure"
//	stmt      := IDENT "=" expr ";"                  // var write
//	           | IDENT "[" expr "]" "=" expr ";"     // array write
//	           | "local" IDENT "=" expr ";"
//	           | "if" "(" expr ")" block ("else" block)?
//	           | "while" "(" expr ")" block
//	           | "let" IDENT "=" ("executeLater"|"spawn") IDENT "(" args? ")" ";"
//	           | ("getValue"|"join") IDENT ";"
//	           | "call" IDENT "(" args? ")" ";"
//	           | ("addread"|"addwrite"|"assertinset"|"useref") IDENT ";"
//	           | "skip" ";"
//	expr      := arithmetic/comparison over NUM, params, locals,
//	             var reads, array reads, "isdone" IDENT
package lang

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed TWEL compilation unit.
type Program struct {
	Regions []string
	Vars    []*VarDecl
	Arrays  []*ArrayDecl
	RefVars []*RefVarDecl
	Tasks   []*TaskDecl
}

// Task returns the task declaration with the given name, or nil.
func (p *Program) Task(name string) *TaskDecl {
	for _, t := range p.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// VarDecl is "var x in RPL;": a global scalar in a region.
type VarDecl struct {
	Name   string
	Region *RPLExpr
	Pos    Pos
}

// ArrayDecl is "array a[N] in RPL;": element i lives in region RPL:[i]
// (index-parameterized arrays, §2.3).
type ArrayDecl struct {
	Name   string
	Size   int
	Region *RPLExpr
	Pos    Pos
}

// RefVarDecl is "refvar r;": a reference-as-region cell for the
// dynamic-effects extension (§7.2.1).
type RefVarDecl struct {
	Name string
	Pos  Pos
}

// TaskDecl declares a task with parameters and an effect summary.
type TaskDecl struct {
	Name          string
	Params        []string
	Deterministic bool
	Effects       []*EffectItem
	Body          *Block
	Pos           Pos
}

// EffectItem is one "reads R" or "writes R" clause.
type EffectItem struct {
	Write  bool
	Region *RPLExpr
	Pos    Pos
}

// RPLExpr is a syntactic RPL whose index elements may be expressions.
type RPLExpr struct {
	Elems []RPLElemExpr
	Pos   Pos
}

// RPLElemKind discriminates RPLElemExpr.
type RPLElemKind int

// RPLElemExpr kinds.
const (
	ElemName RPLElemKind = iota
	ElemIndex
	ElemStar
	ElemAnyIdx
)

// RPLElemExpr is one element of an RPLExpr.
type RPLElemExpr struct {
	Kind  RPLElemKind
	Name  string // ElemName
	Index Expr   // ElemIndex
}

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

// Stmt is a statement.
type Stmt interface {
	stmt()
	Position() Pos
}

// AssignVar is "x = e;".
type AssignVar struct {
	Name  string
	Value Expr
	Pos   Pos
}

// AssignArray is "a[i] = e;".
type AssignArray struct {
	Name  string
	Index Expr
	Value Expr
	Pos   Pos
}

// LocalDecl is "local x = e;": a task-local (effect-free) variable.
type LocalDecl struct {
	Name  string
	Value Expr
	Pos   Pos
}

// If is a conditional.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// While is a loop.
type While struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// LetFuture is "let f = executeLater T(args);" or "let f = spawn T(args);".
type LetFuture struct {
	Name  string
	Spawn bool
	Task  string
	Args  []Expr
	Pos   Pos
}

// Wait is "getValue f;" or "join f;".
type Wait struct {
	Join   bool
	Future string
	Pos    Pos
}

// Call is "call T(args);": run task T's body inline as a method with an
// effect summary (§2.3: "the programmer declares the effects of each
// method as part of its method signature; the compiler can then statically
// verify..."). The call site is checked against the callee's substituted
// summary; the callee's body is verified separately (modular checking).
// Inline-called tasks may not themselves create or wait for tasks.
type Call struct {
	Task string
	Args []Expr
	Pos  Pos
}

// RefOp is one of the dynamic-effect statements: addread / addwrite /
// assertinset / useref (§7.2).
type RefOp struct {
	// Op is "addread", "addwrite", "assertinset" or "useref".
	Op  string
	Ref string
	Pos Pos
}

// Skip is "skip;".
type Skip struct{ Pos Pos }

func (*AssignVar) stmt()   {}
func (*AssignArray) stmt() {}
func (*LocalDecl) stmt()   {}
func (*If) stmt()          {}
func (*While) stmt()       {}
func (*LetFuture) stmt()   {}
func (*Wait) stmt()        {}
func (*Call) stmt()        {}
func (*RefOp) stmt()       {}
func (*Skip) stmt()        {}

// Position implements Stmt.
func (s *AssignVar) Position() Pos   { return s.Pos }
func (s *AssignArray) Position() Pos { return s.Pos }
func (s *LocalDecl) Position() Pos   { return s.Pos }
func (s *If) Position() Pos          { return s.Pos }
func (s *While) Position() Pos       { return s.Pos }
func (s *LetFuture) Position() Pos   { return s.Pos }
func (s *Wait) Position() Pos        { return s.Pos }
func (s *Call) Position() Pos        { return s.Pos }
func (s *RefOp) Position() Pos       { return s.Pos }
func (s *Skip) Position() Pos        { return s.Pos }

// Expr is an expression.
type Expr interface {
	expr()
	Position() Pos
}

// Num is an integer literal.
type Num struct {
	Value int
	Pos   Pos
}

// Ident references a parameter or local (resolved by the checker).
type Ident struct {
	Name string
	Pos  Pos
}

// ArrayRead is "a[i]".
type ArrayRead struct {
	Name  string
	Index Expr
	Pos   Pos
}

// IsDone is "isdone f": 1 if the future completed, else 0 (the isDone
// operation of Fig. 3.1). Its result is schedule-dependent, so it is
// forbidden inside deterministic tasks.
type IsDone struct {
	Future string
	Pos    Pos
}

// Binary is "l op r" with op in + - * / % < <= > >= == !=.
type Binary struct {
	Op   string
	L, R Expr
	Pos  Pos
}

func (*Num) expr()       {}
func (*IsDone) expr()    {}
func (*Ident) expr()     {}
func (*ArrayRead) expr() {}
func (*Binary) expr()    {}

// Position implements Expr.
func (e *Num) Position() Pos       { return e.Pos }
func (e *IsDone) Position() Pos    { return e.Pos }
func (e *Ident) Position() Pos     { return e.Pos }
func (e *ArrayRead) Position() Pos { return e.Pos }
func (e *Binary) Position() Pos    { return e.Pos }
