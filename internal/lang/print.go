package lang

import (
	"fmt"
	"strings"
)

// Format renders a Program back to TWEL source. Parse(Format(p)) yields a
// structurally identical program, which the round-trip tests verify; the
// printer also makes generated fuzz programs and inferred annotations
// human-readable.
func Format(p *Program) string {
	var b strings.Builder
	if len(p.Regions) > 0 {
		b.WriteString("region " + strings.Join(p.Regions, ", ") + ";\n")
	}
	for _, v := range p.Vars {
		fmt.Fprintf(&b, "var %s in %s;\n", v.Name, formatRPL(v.Region))
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s[%d] in %s;\n", a.Name, a.Size, formatRPL(a.Region))
	}
	for _, r := range p.RefVars {
		fmt.Fprintf(&b, "refvar %s;\n", r.Name)
	}
	for _, t := range p.Tasks {
		b.WriteString("\n")
		if t.Deterministic {
			b.WriteString("deterministic ")
		}
		fmt.Fprintf(&b, "task %s(%s) effect %s ", t.Name, strings.Join(t.Params, ", "), formatEffects(t.Effects))
		formatBlock(&b, t.Body, 0)
		b.WriteString("\n")
	}
	return b.String()
}

func formatEffects(items []*EffectItem) string {
	if len(items) == 0 {
		return "pure"
	}
	var parts []string
	lastKw := ""
	for _, it := range items {
		kw := "reads"
		if it.Write {
			kw = "writes"
		}
		if kw != lastKw {
			parts = append(parts, kw+" "+formatRPL(it.Region))
			lastKw = kw
		} else {
			parts[len(parts)-1] += ", " + formatRPL(it.Region)
		}
	}
	return strings.Join(parts, " ")
}

func formatRPL(r *RPLExpr) string {
	if len(r.Elems) == 0 {
		return "Root"
	}
	var parts []string
	for _, el := range r.Elems {
		switch el.Kind {
		case ElemName:
			parts = append(parts, el.Name)
		case ElemStar:
			parts = append(parts, "*")
		case ElemAnyIdx:
			parts = append(parts, "[?]")
		case ElemIndex:
			parts = append(parts, "["+formatExpr(el.Index)+"]")
		}
	}
	return strings.Join(parts, ":")
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		b.WriteString(strings.Repeat("    ", depth+1))
		formatStmt(b, s, depth+1)
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat("    ", depth) + "}")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Skip:
		b.WriteString("skip;")
	case *LocalDecl:
		fmt.Fprintf(b, "local %s = %s;", st.Name, formatExpr(st.Value))
	case *AssignVar:
		fmt.Fprintf(b, "%s = %s;", st.Name, formatExpr(st.Value))
	case *AssignArray:
		fmt.Fprintf(b, "%s[%s] = %s;", st.Name, formatExpr(st.Index), formatExpr(st.Value))
	case *If:
		fmt.Fprintf(b, "if (%s) ", formatExpr(st.Cond))
		formatBlock(b, st.Then, depth)
		if st.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, st.Else, depth)
		}
	case *While:
		fmt.Fprintf(b, "while (%s) ", formatExpr(st.Cond))
		formatBlock(b, st.Body, depth)
	case *LetFuture:
		op := "executeLater"
		if st.Spawn {
			op = "spawn"
		}
		var args []string
		for _, a := range st.Args {
			args = append(args, formatExpr(a))
		}
		fmt.Fprintf(b, "let %s = %s %s(%s);", st.Name, op, st.Task, strings.Join(args, ", "))
	case *Wait:
		op := "getValue"
		if st.Join {
			op = "join"
		}
		fmt.Fprintf(b, "%s %s;", op, st.Future)
	case *Call:
		var args []string
		for _, a := range st.Args {
			args = append(args, formatExpr(a))
		}
		fmt.Fprintf(b, "call %s(%s);", st.Task, strings.Join(args, ", "))
	case *RefOp:
		fmt.Fprintf(b, "%s %s;", st.Op, st.Ref)
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */", s)
	}
}

// formatExpr renders fully parenthesized expressions, so precedence never
// changes across a round trip.
func formatExpr(e Expr) string {
	switch v := e.(type) {
	case *Num:
		return fmt.Sprintf("%d", v.Value)
	case *Ident:
		return v.Name
	case *IsDone:
		return "isdone " + v.Future
	case *ArrayRead:
		return fmt.Sprintf("%s[%s]", v.Name, formatExpr(v.Index))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", formatExpr(v.L), v.Op, formatExpr(v.R))
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}
