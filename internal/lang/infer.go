package lang

import (
	"twe/internal/effect"
	"twe/internal/rpl"
)

// Infer computes a sound effect summary for every task from its body
// alone, the role of the effect-inference tooling the paper leans on for
// annotation burden (§2.3: Vakilian et al. show "most DPJ/TWEJava-style
// effect specifications" can be inferred).
//
// A task's inferred summary is the union of
//
//   - the effects of its own memory accesses (with constant indices kept
//     concrete, parameter indices kept symbolic, everything else [?]), and
//   - the substituted summaries of the tasks it spawns — spawn transfers
//     the child's effects out of the parent's covering effect, so the
//     parent's declaration must include them (§3.1.5);
//
// and excludes the effects of tasks it merely executeLater-creates, which
// the scheduler checks independently ("excluding any effects of
// asynchronous tasks it may in turn create", Fig. 5.1 caption).
//
// Recursive spawn chains are solved by Kleene iteration; if a summary has
// not stabilized after maxRounds (index arguments shifting every round),
// its index elements are widened to [?], which always converges.
func Infer(prog *Program) map[string]effect.Set {
	inf := &inferrer{
		prog:    prog,
		vars:    map[string]rpl.RPL{},
		arrays:  map[string]rpl.RPL{},
		current: map[string]effect.Set{},
	}
	for _, v := range prog.Vars {
		inf.vars[v.Name] = staticDeclRPL(v.Region)
	}
	for _, a := range prog.Arrays {
		inf.arrays[a.Name] = staticDeclRPL(a.Region)
	}
	for _, t := range prog.Tasks {
		inf.current[t.Name] = effect.Pure
	}

	const maxRounds = 12
	for round := 0; ; round++ {
		changed := false
		for _, t := range prog.Tasks {
			next := inf.taskEffects(t)
			if round >= maxRounds {
				next = widenIndices(next)
			}
			if !next.Equal(inf.current[t.Name]) {
				inf.current[t.Name] = next
				changed = true
			}
		}
		if !changed {
			break
		}
		if round > maxRounds+4 {
			// Widening guarantees convergence; this is a defensive stop.
			break
		}
	}
	out := map[string]effect.Set{}
	for k, v := range inf.current {
		out[k] = v
	}
	return out
}

// staticDeclRPL resolves a declaration-site RPL (no parameters in scope).
func staticDeclRPL(e *RPLExpr) rpl.RPL {
	var elems []rpl.Elem
	for _, el := range e.Elems {
		switch el.Kind {
		case ElemName:
			elems = append(elems, rpl.N(el.Name))
		case ElemStar:
			elems = append(elems, rpl.Any)
		case ElemAnyIdx:
			elems = append(elems, rpl.AnyIdx)
		case ElemIndex:
			if n, ok := constFold(el.Index); ok {
				elems = append(elems, rpl.Idx(n))
			} else {
				elems = append(elems, rpl.AnyIdx)
			}
		}
	}
	return rpl.New(elems...)
}

type inferrer struct {
	prog    *Program
	vars    map[string]rpl.RPL
	arrays  map[string]rpl.RPL
	current map[string]effect.Set
}

func (inf *inferrer) taskEffects(t *TaskDecl) effect.Set {
	params := map[string]bool{}
	for _, p := range t.Params {
		params[p] = true
	}
	w := &inferWalk{inf: inf, params: params}
	w.block(t.Body)
	return w.acc
}

type inferWalk struct {
	inf    *inferrer
	params map[string]bool
	acc    effect.Set
}

func (w *inferWalk) add(s effect.Set) { w.acc = w.acc.Union(s) }

func (w *inferWalk) block(b *Block) {
	for _, s := range b.Stmts {
		w.stmt(s)
	}
}

func (w *inferWalk) stmt(s Stmt) {
	switch st := s.(type) {
	case *Skip, *RefOp, *Wait:
		// no static memory effects (dynamic refs are outside the RPL
		// system; getValue/join transfer but do not access)
	case *LocalDecl:
		w.expr(st.Value)
	case *AssignVar:
		w.expr(st.Value)
		if r, ok := w.inf.vars[st.Name]; ok {
			w.add(effect.NewSet(effect.WriteEff(r)))
		}
	case *AssignArray:
		w.expr(st.Index)
		w.expr(st.Value)
		if base, ok := w.inf.arrays[st.Name]; ok {
			w.add(effect.NewSet(effect.WriteEff(base.Append(w.indexElem(st.Index)))))
		}
	case *If:
		w.expr(st.Cond)
		w.block(st.Then)
		if st.Else != nil {
			w.block(st.Else)
		}
	case *While:
		w.expr(st.Cond)
		w.block(st.Body)
	case *LetFuture:
		for _, a := range st.Args {
			w.expr(a)
		}
		if st.Spawn {
			// Spawned effects must be covered by the parent's summary.
			if callee := w.inf.prog.Task(st.Task); callee != nil {
				w.add(w.substitute(callee, st.Args))
			}
		}
	case *Call:
		for _, a := range st.Args {
			w.expr(a)
		}
		// The callee's body runs inline: its effects are the caller's.
		if callee := w.inf.prog.Task(st.Task); callee != nil {
			w.add(w.substitute(callee, st.Args))
		}
	}
}

func (w *inferWalk) expr(e Expr) {
	switch v := e.(type) {
	case *Num, *IsDone:
	case *Ident:
		if w.params[v.Name] {
			return
		}
		if r, ok := w.inf.vars[v.Name]; ok {
			w.add(effect.NewSet(effect.Read(r)))
		}
		// Unknown names are locals (or checker errors); no effect either way.
	case *ArrayRead:
		w.expr(v.Index)
		if base, ok := w.inf.arrays[v.Name]; ok {
			w.add(effect.NewSet(effect.Read(base.Append(w.indexElem(v.Index)))))
		}
	case *Binary:
		w.expr(v.L)
		w.expr(v.R)
	}
}

func (w *inferWalk) indexElem(e Expr) rpl.Elem {
	if n, ok := constFold(e); ok {
		return rpl.Idx(n)
	}
	if id, ok := e.(*Ident); ok && w.params[id.Name] {
		return rpl.P(id.Name)
	}
	return rpl.AnyIdx
}

// substitute maps the callee's *current inferred* summary through the call
// arguments, mirroring checker.substitutedEffects but over inferred sets.
func (w *inferWalk) substitute(callee *TaskDecl, args []Expr) effect.Set {
	cur := w.inf.current[callee.Name]
	argFor := map[string]Expr{}
	for i, p := range callee.Params {
		if i < len(args) {
			argFor[p] = args[i]
		}
	}
	var out []effect.Effect
	for _, e := range cur.Effects() {
		var elems []rpl.Elem
		for i := 0; i < e.Region.Len(); i++ {
			el := e.Region.Elem(i)
			if el.Kind == rpl.Param {
				if arg, ok := argFor[el.Name]; ok {
					elems = append(elems, w.indexElem(arg))
					continue
				}
				// Parameter of the callee with no binding: unknown index.
				elems = append(elems, rpl.AnyIdx)
				continue
			}
			elems = append(elems, el)
		}
		out = append(out, effect.Effect{Write: e.Write, Region: rpl.New(elems...)})
	}
	return effect.NewSet(out...)
}

// widenIndices replaces concrete and symbolic index elements with [?],
// forcing convergence of recursive spawn chains.
func widenIndices(s effect.Set) effect.Set {
	var out []effect.Effect
	for _, e := range s.Effects() {
		var elems []rpl.Elem
		for i := 0; i < e.Region.Len(); i++ {
			el := e.Region.Elem(i)
			if el.Kind == rpl.Index || el.Kind == rpl.Param {
				elems = append(elems, rpl.AnyIdx)
			} else {
				elems = append(elems, el)
			}
		}
		out = append(out, effect.Effect{Write: e.Write, Region: rpl.New(elems...)})
	}
	return effect.NewSet(out...)
}

// AnnotationFinding reports a task whose declared summary diverges from
// the inferred one.
type AnnotationFinding struct {
	Task string
	// Missing holds inferred effects not covered by the declaration — the
	// declaration is unsound and the checker will reject the body.
	Missing []effect.Effect
	// Inferred is the full inferred summary, printable as a suggestion.
	Inferred effect.Set
}

// Audit compares inferred summaries against declared ones and returns one
// finding per task whose declaration fails to cover its inferred effects.
// (Declarations broader than necessary are legal — summaries may be
// conservative — so they are not reported.)
func Audit(prog *Program) []AnnotationFinding {
	inferred := Infer(prog)
	c := &checker{prog: prog}
	c.resolveDecls()
	var out []AnnotationFinding
	for _, t := range prog.Tasks {
		decl := c.declaredEffects(t)
		var missing []effect.Effect
		for _, e := range inferred[t.Name].Effects() {
			if !decl.CoversEffect(e) {
				missing = append(missing, e)
			}
		}
		if len(missing) > 0 {
			out = append(out, AnnotationFinding{Task: t.Name, Missing: missing, Inferred: inferred[t.Name]})
		}
	}
	return out
}
