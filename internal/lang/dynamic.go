package lang

import (
	"twe/internal/effect"
	"twe/internal/rpl"
)

// EvalConst evaluates an expression over an integer environment, returning
// false when the expression mentions names outside env. Used to compute
// dynamic RPLs: at task-creation time every parameter has a concrete
// value, so index expressions over parameters fold to integers (§3.4.1).
func EvalConst(env map[string]int, e Expr) (int, bool) {
	switch v := e.(type) {
	case *Num:
		return v.Value, true
	case *Ident:
		val, ok := env[v.Name]
		return val, ok
	case *Binary:
		a, aok := EvalConst(env, v.L)
		b, bok := EvalConst(env, v.R)
		if !aok || !bok {
			return 0, false
		}
		switch v.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b != 0 {
				return a / b, true
			}
		case "%":
			if b != 0 {
				return a % b, true
			}
		case "<":
			return boolInt(a < b), true
		case "<=":
			return boolInt(a <= b), true
		case ">":
			return boolInt(a > b), true
		case ">=":
			return boolInt(a >= b), true
		case "==":
			return boolInt(a == b), true
		case "!=":
			return boolInt(a != b), true
		}
	}
	return 0, false
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DynamicEffects resolves a task's declared effect summary with concrete
// argument values, producing the dynamic RPLs the run-time scheduler sees
// (§2.3.1, §3.4.1). Index expressions that do not fold become [?].
func DynamicEffects(decl *TaskDecl, args []int) effect.Set {
	env := map[string]int{}
	for i, p := range decl.Params {
		if i < len(args) {
			env[p] = args[i]
		}
	}
	var effs []effect.Effect
	for _, item := range decl.Effects {
		var elems []rpl.Elem
		for _, el := range item.Region.Elems {
			switch el.Kind {
			case ElemName:
				elems = append(elems, rpl.N(el.Name))
			case ElemStar:
				elems = append(elems, rpl.Any)
			case ElemAnyIdx:
				elems = append(elems, rpl.AnyIdx)
			case ElemIndex:
				if v, ok := EvalConst(env, el.Index); ok {
					elems = append(elems, rpl.Idx(v))
				} else {
					elems = append(elems, rpl.AnyIdx)
				}
			}
		}
		effs = append(effs, effect.Effect{Write: item.Write, Region: rpl.New(elems...)})
	}
	return effect.NewSet(effs...)
}
