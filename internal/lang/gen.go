package lang

import (
	"fmt"
	"math/rand"

	"twe/internal/effect"
	"twe/internal/rpl"
)

// GenerateRandomProgram produces a random TWEL program whose effect
// declarations are derived from its bodies by Infer, making it correct by
// construction. The static checker must accept it and the formal-semantics
// interpreter must execute it without safety violations under every
// schedule — the program generator behind the model-checking fuzz tests.
//
// The generated shape: a handful of regions, scalars, and arrays; leaf
// tasks doing random (terminating) imperative work; mid-level tasks that
// spawn/join leaves and run siblings inline; driver tasks that
// executeLater/getValue mid-level tasks; and a main task firing several
// drivers. All loops are counted (`local i = 0; while (i < k) ...`), so
// every schedule quiesces.
func GenerateRandomProgram(seed int64) *Program {
	g := &progGen{rnd: rand.New(rand.NewSource(seed)), prog: &Program{}}
	g.decls()
	g.leafTasks()
	g.midTasks()
	g.driverTasks()
	g.mainTask()
	g.deriveEffects()
	return g.prog
}

type progGen struct {
	rnd  *rand.Rand
	prog *Program

	vars   []string
	arrays []string
	leaves []*TaskDecl
	mids   []*TaskDecl
}

func (g *progGen) decls() {
	nRegions := 2 + g.rnd.Intn(3)
	for i := 0; i < nRegions; i++ {
		g.prog.Regions = append(g.prog.Regions, fmt.Sprintf("R%d", i))
	}
	nVars := 1 + g.rnd.Intn(3)
	for i := 0; i < nVars; i++ {
		name := fmt.Sprintf("v%d", i)
		g.vars = append(g.vars, name)
		g.prog.Vars = append(g.prog.Vars, &VarDecl{
			Name:   name,
			Region: g.regionExpr(),
		})
	}
	nArrays := 1 + g.rnd.Intn(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.prog.Arrays = append(g.prog.Arrays, &ArrayDecl{
			Name:   name,
			Size:   4 + g.rnd.Intn(4),
			Region: g.regionExpr(),
		})
	}
}

func (g *progGen) regionExpr() *RPLExpr {
	r := &RPLExpr{}
	r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemName, Name: g.prog.Regions[g.rnd.Intn(len(g.prog.Regions))]})
	if g.rnd.Intn(3) == 0 {
		r.Elems = append(r.Elems, RPLElemExpr{Kind: ElemName, Name: g.prog.Regions[g.rnd.Intn(len(g.prog.Regions))]})
	}
	return r
}

// expr builds a random effect-bearing expression over the given parameter
// names.
func (g *progGen) expr(params []string, depth int) Expr {
	if depth <= 0 || g.rnd.Intn(3) == 0 {
		switch g.rnd.Intn(4) {
		case 0:
			return &Num{Value: g.rnd.Intn(10)}
		case 1:
			if len(params) > 0 {
				return &Ident{Name: params[g.rnd.Intn(len(params))]}
			}
			return &Num{Value: 1}
		case 2:
			return &Ident{Name: g.vars[g.rnd.Intn(len(g.vars))]}
		default:
			a := g.arrays[g.rnd.Intn(len(g.arrays))]
			return &ArrayRead{Name: a, Index: g.boundedIndex(params, a)}
		}
	}
	ops := []string{"+", "-", "*"}
	return &Binary{
		Op: ops[g.rnd.Intn(len(ops))],
		L:  g.expr(params, depth-1),
		R:  g.expr(params, depth-1),
	}
}

// boundedIndex yields an index expression guaranteed in range: a constant
// below the array size, or param % size.
func (g *progGen) boundedIndex(params []string, arrayName string) Expr {
	size := 4
	for _, a := range g.prog.Arrays {
		if a.Name == arrayName {
			size = a.Size
		}
	}
	if len(params) > 0 && g.rnd.Intn(2) == 0 {
		// ((p % size) + size) % size: in range even for negative p (Go's %
		// truncates toward zero).
		inner := &Binary{Op: "%",
			L: &Ident{Name: params[g.rnd.Intn(len(params))]},
			R: &Num{Value: size}}
		return &Binary{Op: "%",
			L: &Binary{Op: "+", L: inner, R: &Num{Value: size}},
			R: &Num{Value: size}}
	}
	return &Num{Value: g.rnd.Intn(size)}
}

// workStmts emits 1–4 random assignment/branch/loop statements.
func (g *progGen) workStmts(params []string, depth int) []Stmt {
	n := 1 + g.rnd.Intn(4)
	var out []Stmt
	for i := 0; i < n; i++ {
		switch g.rnd.Intn(6) {
		case 0, 1: // var write
			out = append(out, &AssignVar{
				Name:  g.vars[g.rnd.Intn(len(g.vars))],
				Value: g.expr(params, 2),
			})
		case 2, 3: // array write
			a := g.arrays[g.rnd.Intn(len(g.arrays))]
			out = append(out, &AssignArray{
				Name:  a,
				Index: g.boundedIndex(params, a),
				Value: g.expr(params, 2),
			})
		case 4: // branch
			if depth > 0 {
				ifs := &If{
					Cond: &Binary{Op: "<", L: g.expr(params, 1), R: &Num{Value: 5}},
					Then: &Block{Stmts: g.workStmts(params, depth-1)},
				}
				if g.rnd.Intn(2) == 0 {
					ifs.Else = &Block{Stmts: g.workStmts(params, depth-1)}
				}
				out = append(out, ifs)
			}
		case 5: // counted loop
			if depth > 0 {
				ctr := fmt.Sprintf("i%d", g.rnd.Intn(100))
				body := g.workStmts(append(params, ctr), depth-1)
				body = append(body, &LocalDecl{Name: ctr, Value: &Binary{Op: "+", L: &Ident{Name: ctr}, R: &Num{Value: 1}}})
				out = append(out,
					&LocalDecl{Name: ctr, Value: &Num{Value: 0}},
					&While{
						Cond: &Binary{Op: "<", L: &Ident{Name: ctr}, R: &Num{Value: 1 + g.rnd.Intn(3)}},
						Body: &Block{Stmts: body},
					})
			}
		}
	}
	if len(out) == 0 {
		out = append(out, &Skip{})
	}
	return out
}

func (g *progGen) leafTasks() {
	n := 2 + g.rnd.Intn(3)
	for i := 0; i < n; i++ {
		params := []string{"p"}
		t := &TaskDecl{
			Name:   fmt.Sprintf("leaf%d", i),
			Params: params,
			Body:   &Block{Stmts: g.workStmts(params, 2)},
		}
		g.leaves = append(g.leaves, t)
		g.prog.Tasks = append(g.prog.Tasks, t)
	}
}

// midTasks do inline work, then spawn exactly one leaf and join it at the
// end. The single-spawn shape keeps the generated program spawn-safe by
// construction: the inline work precedes the transfer, nothing follows the
// join, and sibling spawned effects cannot conflict with each other.
func (g *progGen) midTasks() {
	n := 1 + g.rnd.Intn(2)
	for i := 0; i < n; i++ {
		params := []string{"q"}
		var stmts []Stmt
		stmts = append(stmts, g.workStmts(params, 1)...)
		if g.rnd.Intn(2) == 0 {
			// Inline method call: the callee's substituted summary becomes
			// part of this task's inferred effects.
			callee := g.leaves[g.rnd.Intn(len(g.leaves))]
			stmts = append(stmts, &Call{Task: callee.Name, Args: []Expr{g.expr(params, 1)}})
		}
		leaf := g.leaves[g.rnd.Intn(len(g.leaves))]
		stmts = append(stmts,
			&LetFuture{Name: "f0", Spawn: true, Task: leaf.Name,
				Args: []Expr{g.expr(params, 1)}},
			&Wait{Join: true, Future: "f0"})
		t := &TaskDecl{
			Name:   fmt.Sprintf("mid%d", i),
			Params: params,
			Body:   &Block{Stmts: stmts},
		}
		g.mids = append(g.mids, t)
		g.prog.Tasks = append(g.prog.Tasks, t)
	}
}

// driverTasks executeLater mid tasks and wait for them.
func (g *progGen) driverTasks() {
	params := []string{"d"}
	var stmts []Stmt
	n := 1 + g.rnd.Intn(3)
	for s := 0; s < n; s++ {
		target := g.mids[g.rnd.Intn(len(g.mids))].Name
		if g.rnd.Intn(3) == 0 {
			target = g.leaves[g.rnd.Intn(len(g.leaves))].Name
		}
		fname := fmt.Sprintf("df%d", s)
		stmts = append(stmts,
			&LetFuture{Name: fname, Task: target, Args: []Expr{g.expr(params, 1)}},
			&Wait{Future: fname})
	}
	g.prog.Tasks = append(g.prog.Tasks, &TaskDecl{
		Name:   "driver0",
		Params: params,
		Body:   &Block{Stmts: stmts},
	})
}

func (g *progGen) mainTask() {
	var stmts []Stmt
	n := 1 + g.rnd.Intn(3)
	for s := 0; s < n; s++ {
		fname := fmt.Sprintf("mf%d", s)
		stmts = append(stmts,
			&LetFuture{Name: fname, Task: "driver0", Args: []Expr{&Num{Value: g.rnd.Intn(8)}}},
			&Wait{Future: fname})
	}
	g.prog.Tasks = append(g.prog.Tasks, &TaskDecl{
		Name: "main",
		Body: &Block{Stmts: stmts},
	})
}

// deriveEffects runs inference and splices the inferred summaries back as
// the declared effects. Drivers additionally take the union with every
// task they executeLater so the whole-program story stays simple (their
// getValue then never needs effect transfer; transfer is still exercised
// because the inferred summaries routinely overlap).
func (g *progGen) deriveEffects() {
	inferred := Infer(g.prog)
	for _, t := range g.prog.Tasks {
		set := inferred[t.Name]
		t.Effects = effectItems(set)
	}
}

// EffectItems converts an effect summary to declaration syntax, for program
// generators (this package's GenerateRandomProgram, internal/schedfuzz) that
// compute summaries with Infer and splice them back into TaskDecls.
func EffectItems(s effect.Set) []*EffectItem { return effectItems(s) }

// effectItems converts a summary to syntax form.
func effectItems(s effect.Set) []*EffectItem {
	var items []*EffectItem
	for _, e := range s.Effects() {
		items = append(items, &EffectItem{Write: e.Write, Region: rplToExpr(e.Region)})
	}
	return items
}

func rplToExpr(r rpl.RPL) *RPLExpr {
	out := &RPLExpr{}
	for i := 0; i < r.Len(); i++ {
		switch el := r.Elem(i); el.Kind {
		case rpl.Name:
			out.Elems = append(out.Elems, RPLElemExpr{Kind: ElemName, Name: el.Name})
		case rpl.Index:
			out.Elems = append(out.Elems, RPLElemExpr{Kind: ElemIndex, Index: &Num{Value: el.Index}})
		case rpl.Star:
			out.Elems = append(out.Elems, RPLElemExpr{Kind: ElemStar})
		case rpl.AnyIndex:
			out.Elems = append(out.Elems, RPLElemExpr{Kind: ElemAnyIdx})
		case rpl.Param:
			out.Elems = append(out.Elems, RPLElemExpr{Kind: ElemIndex, Index: &Ident{Name: el.Name}})
		}
	}
	return out
}
