package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFormatRoundTripCorpus: Format(Parse(src)) must reparse to a program
// that formats identically (print → parse → print is a fixpoint).
func TestFormatRoundTripCorpus(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.twel")
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p1 := MustParse(string(src))
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("%s: reparse of formatted output failed: %v\n%s", file, err, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Fatalf("%s: Format not a fixpoint:\n--- first\n%s\n--- second\n%s", file, out1, out2)
		}
	}
}

// TestFormatRoundTripGenerated: the fuzz generator's ASTs survive the
// printer/parser round trip and still pass the checker.
func TestFormatRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p1 := GenerateRandomProgram(seed)
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out1)
		}
		if res := Check(p2); !res.OK() {
			t.Fatalf("seed %d: reparsed program fails checks: %v", seed, res.Errors)
		}
		if out2 := Format(p2); out1 != out2 {
			t.Fatalf("seed %d: printer not a fixpoint", seed)
		}
	}
}

func TestFormatSpecificForms(t *testing.T) {
	src := `
region A, B;
var x in A;
array a[4] in B;
refvar r;
deterministic task leaf(i) effect writes B:[i] {
    a[i] = (i * 2);
}
task main(n) effect reads A writes B:*, A {
    local y = ((n + 1) % 3);
    if (y < 2) { x = a[0]; } else { skip; }
    while (y > 0) {
        local y = (y - 1);
    }
    let f = spawn leaf(1);
    join f;
    let g = executeLater leaf(2);
    local d = isdone g;
    getValue g;
    addread r;
    useref r;
}
`
	out := Format(MustParse(src))
	for _, want := range []string{
		"deterministic task leaf(i)", "effect writes B:[i]",
		"let f = spawn leaf(1);", "join f;", "isdone g",
		"addread r;", "useref r;", "while", "else", "refvar r;",
		"array a[4] in B;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
	if res := Check(MustParse(out)); !res.OK() {
		t.Fatalf("formatted program fails checks: %v", res.Errors)
	}
}
