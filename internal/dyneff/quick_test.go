package dyneff

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// opScript is a randomly generated batch of sections, each reading and
// writing a random subset of refs with a known arithmetic. The quick
// property: executing the script concurrently under dyneff yields the same
// per-ref *multiset of applied deltas* as a sequential model — additions
// commute, so final values must match exactly, for any interleaving.
type opScript struct {
	nRefs    int
	sections [][]secOp
}

type secOp struct {
	ref   int
	delta int
}

func genScript(r *rand.Rand) opScript {
	s := opScript{nRefs: 2 + r.Intn(6)}
	nSec := 1 + r.Intn(12)
	for i := 0; i < nSec; i++ {
		nOps := 1 + r.Intn(4)
		sec := make([]secOp, nOps)
		for j := range sec {
			sec[j] = secOp{ref: r.Intn(s.nRefs), delta: r.Intn(9) - 4}
		}
		s.sections = append(s.sections, sec)
	}
	return s
}

func TestQuickCommutativeSections(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(genScript(r))
		},
	}
	if err := quick.Check(func(script opScript) bool {
		// Sequential model.
		model := make([]int, script.nRefs)
		for _, sec := range script.sections {
			for _, op := range sec {
				model[op.ref] += op.delta
			}
		}
		// Concurrent dyneff execution.
		reg := NewRegistry()
		refs := make([]*Ref, script.nRefs)
		for i := range refs {
			refs[i] = NewRef(reg, 0)
		}
		var wg sync.WaitGroup
		errs := make(chan error, len(script.sections))
		for _, sec := range script.sections {
			sec := sec
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := reg.Run(func(tx *Tx) error {
					for _, op := range sec {
						v := tx.Get(refs[op.ref]).(int)
						tx.Set(refs[op.ref], v+op.delta)
					}
					return nil
				})
				if err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Logf("section error: %v", err)
			return false
		}
		for i, r := range refs {
			if r.Peek().(int) != model[i] {
				t.Logf("ref %d: got %d, model %d (aborts=%d)", i, r.Peek(), model[i], reg.Aborts())
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSnapshotConsistency: sections that only read must observe a
// consistent snapshot of refs written together — never a torn pair.
func TestQuickSnapshotConsistency(t *testing.T) {
	reg := NewRegistry()
	a := NewRef(reg, 0)
	b := NewRef(reg, 0)
	stop := make(chan struct{})
	var torn sync.Once
	tornSeen := false
	var wg sync.WaitGroup
	// Writer: keeps a == b invariant inside each section.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 400; i++ {
			reg.Run(func(tx *Tx) error {
				tx.Set(a, i)
				tx.Set(b, i)
				return nil
			})
		}
		close(stop)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Run(func(tx *Tx) error {
					va := tx.Get(a).(int)
					vb := tx.Get(b).(int)
					if va != vb {
						torn.Do(func() { tornSeen = true })
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if tornSeen {
		t.Fatal("reader observed a torn write pair: section isolation broken")
	}
}
