package dyneff

import (
	"errors"
	"testing"
	"time"

	"twe/internal/obs"
)

// holdWriter fabricates an old section holding r's writer slot, forcing
// every younger accessor to abort until released.
func holdWriter(reg *Registry, r *Ref) *Tx {
	tx := &Tx{reg: reg, seq: reg.nextSeq.Add(1), rs: map[*Ref]struct{}{}, ws: map[*Ref]struct{}{}}
	tx.AddWrite(r)
	return tx
}

func TestRetryBudgetExhausted(t *testing.T) {
	reg := NewRegistryWithConfig(Config{MaxAttempts: 3, BackoffBase: time.Nanosecond})
	r := NewRef(reg, 0)
	blocker := holdWriter(reg, r)
	retries, err := reg.Run(func(tx *Tx) error {
		tx.Get(r)
		return nil
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if retries != 3 {
		t.Fatalf("retries = %d, want 3 (the full budget)", retries)
	}
	blocker.release()
	// The exhausted section must have released its refs: a fresh section
	// commits immediately.
	if retries, err := reg.Run(func(tx *Tx) error { tx.Set(r, 7); return nil }); err != nil || retries != 0 {
		t.Fatalf("after exhaustion: retries=%d err=%v", retries, err)
	}
	if got := r.Peek().(int); got != 7 {
		t.Fatalf("r = %d, want 7", got)
	}
}

func TestBreakerTripsAndCloses(t *testing.T) {
	tr := obs.New()
	reg := NewRegistryWithConfig(Config{
		MaxAttempts: 16, BackoffBase: time.Nanosecond,
		BreakerThreshold: 4, BreakerCooldown: 1,
	})
	reg.SetTracer(tr)
	r := NewRef(reg, 0)
	blocker := holdWriter(reg, r)
	if _, err := reg.Run(func(tx *Tx) error { tx.Get(r); return nil }); !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("victim err = %v", err)
	}
	if !reg.BreakerOpen() {
		t.Fatal("breaker should be open after an abort storm")
	}
	if reg.BreakerTrips() != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", reg.BreakerTrips())
	}
	blocker.release()
	// One committed serialized section satisfies the cooldown and closes
	// the breaker.
	if _, err := reg.Run(func(tx *Tx) error { tx.Set(r, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.BreakerOpen() {
		t.Fatal("breaker should have closed after the cooldown commit")
	}

	s := tr.Metrics().Snapshot()
	if s.DyneffRetries == 0 {
		t.Error("DyneffRetries not counted")
	}
	if s.DyneffBreakerTrips != 1 {
		t.Errorf("DyneffBreakerTrips = %d, want 1", s.DyneffBreakerTrips)
	}
	var sawRetry bool
	var breakerSeq []string
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindRetry:
			sawRetry = true
		case obs.KindBreaker:
			breakerSeq = append(breakerSeq, e.Detail)
		}
	}
	if !sawRetry {
		t.Error("no KindRetry events emitted")
	}
	if len(breakerSeq) != 2 || breakerSeq[0] != "open" || breakerSeq[1] != "closed" {
		t.Errorf("breaker event sequence = %v, want [open closed]", breakerSeq)
	}
}

// TestErrorRollsBackPartialWrites: a section whose fn returns an error
// must roll back every write before releasing its refs — an error return
// is a failed section, not a commit.
func TestErrorRollsBackPartialWrites(t *testing.T) {
	reg := NewRegistry()
	a, b := NewRef(reg, 1), NewRef(reg, 2)
	boom := errors.New("boom")
	if _, err := reg.Run(func(tx *Tx) error {
		tx.Set(a, 10)
		tx.Set(b, 20)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if a.Peek().(int) != 1 || b.Peek().(int) != 2 {
		t.Fatalf("partial writes escaped a failed section: a=%v b=%v", a.Peek(), b.Peek())
	}
	// Refs must be released: a fresh section acquires both and commits.
	if _, err := reg.Run(func(tx *Tx) error { tx.Set(a, 3); tx.Set(b, 4); return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Peek().(int) != 3 || b.Peek().(int) != 4 {
		t.Fatalf("post-failure section lost writes: a=%v b=%v", a.Peek(), b.Peek())
	}
}

// TestForeignPanicRollsBackAndReleases: a panic out of fn propagates to
// the caller (for the task layer to contain), but only after the undo log
// is rolled back and the refs are released.
func TestForeignPanicRollsBackAndReleases(t *testing.T) {
	reg := NewRegistry()
	a := NewRef(reg, "clean")
	func() {
		defer func() {
			if r := recover(); r != "mid-section" {
				t.Fatalf("recovered %v, want the foreign panic", r)
			}
		}()
		reg.Run(func(tx *Tx) error {
			tx.Set(a, "dirty")
			panic("mid-section")
		})
	}()
	if a.Peek() != "clean" {
		t.Fatalf("a = %v after panicking section, want clean", a.Peek())
	}
	if _, err := reg.Run(func(tx *Tx) error { tx.Set(a, "next"); return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.Commits() != 1 {
		t.Fatalf("Commits = %d: the panicking attempt must not count", reg.Commits())
	}
}
