// Bounded retry and abort-storm damping for dynamic-effects sections
// (DESIGN.md §10). The dissertation's abort/retry loop (§7.2.4) retries
// immediately and unboundedly — safe for the paper's workloads, but a
// production runtime needs the loop to (a) terminate when a section can
// never commit, (b) back off instead of burning CPU re-colliding, and
// (c) stop a storm of mutually-aborting sections from collapsing
// throughput. This file adds all three: a per-section attempt budget with
// capped exponential backoff, and a registry-wide circuit breaker that
// serializes sections while open so the oldest always commits.
package dyneff

import (
	"sync"
	"sync/atomic"
	"time"

	"twe/internal/obs"
)

// Config bounds the abort/retry machinery. The zero value of any field
// selects its default.
type Config struct {
	// MaxAttempts caps the attempts of one section (default 64). The
	// age-based conflict policy makes starvation impossible, so a section
	// that exhausts the budget indicates a livelock bug or a section whose
	// fn keeps failing; Run returns ErrTooManyRetries.
	MaxAttempts int
	// BackoffBase is the sleep after the first abort (default 1µs); each
	// further abort doubles it up to BackoffCap (default 512µs). The
	// backoff is deterministic — jitter comes from each section's age, not
	// from a RNG, so fault-injection runs replay identically.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold is the number of aborts, counted registry-wide since
	// the breaker last closed, that open it (default 32). While open, every
	// section runs serialized on one mutex — no conflicts, so the storm
	// drains at sequential speed instead of thrashing.
	BreakerThreshold int64
	// BreakerCooldown is the number of serialized commits after which the
	// breaker closes again (default 4).
	BreakerCooldown int64
}

// Defaults for Config fields left zero.
const (
	DefaultMaxAttempts      = 64
	DefaultBreakerThreshold = 32
	DefaultBreakerCooldown  = 4
)

const (
	defaultBackoffBase = time.Microsecond
	defaultBackoffCap  = 512 * time.Microsecond
)

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = defaultBackoffCap
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// SetTracer installs the observability tracer that receives retry and
// breaker events (obs.KindRetry / obs.KindBreaker) and the DyneffRetries /
// DyneffBreakerTrips counters. Call before running sections.
func (reg *Registry) SetTracer(t *obs.Tracer) { reg.tracer = t }

// BreakerOpen reports whether the abort-storm breaker is currently open
// (sections serialized).
func (reg *Registry) BreakerOpen() bool { return reg.breakerOpen.Load() }

// BreakerTrips returns how many times the breaker has opened.
func (reg *Registry) BreakerTrips() int64 { return reg.breakerTrips.Load() }

// backoff returns the sleep before the given retry (attempt >= 1),
// exponential in the attempt and skewed by the section's age so that
// colliding sections desynchronize without randomness: younger (larger
// seq) sections wait slightly longer, reinforcing the oldest-wins policy.
func (reg *Registry) backoff(seq uint64, attempt int) time.Duration {
	d := reg.cfg.BackoffBase << uint(attempt-1)
	if d <= 0 || d > reg.cfg.BackoffCap {
		d = reg.cfg.BackoffCap
	}
	return d + time.Duration(seq%8)*reg.cfg.BackoffBase/4
}

// noteAbort feeds the breaker: opening it when the abort count since the
// last close crosses the threshold.
func (reg *Registry) noteAbort() {
	if reg.abortStreak.Add(1) < reg.cfg.BreakerThreshold {
		return
	}
	if reg.breakerOpen.CompareAndSwap(false, true) {
		reg.breakerTrips.Add(1)
		reg.cooldownLeft.Store(reg.cfg.BreakerCooldown)
		if tr := reg.tracer; tr != nil {
			tr.Metrics().DyneffBreakerTrips.Add(1)
			tr.Emit(obs.Event{Kind: obs.KindBreaker, Detail: "open"})
		}
	}
}

// breakerEnter serializes the caller while the breaker is open. Returns
// whether the serial lock is held (pass to breakerExit).
func (reg *Registry) breakerEnter() bool {
	if !reg.breakerOpen.Load() {
		return false
	}
	reg.serialMu.Lock()
	// The breaker may have closed while we queued; run serialized anyway —
	// correctness never depends on the breaker, it is only a throttle.
	return true
}

// breakerExit releases the serial lock and, after a committed serialized
// section, counts down the cooldown that closes the breaker.
func (reg *Registry) breakerExit(serialized, committed bool) {
	if !serialized {
		return
	}
	if committed && reg.cooldownLeft.Add(-1) <= 0 && reg.breakerOpen.CompareAndSwap(true, false) {
		reg.abortStreak.Store(0)
		if tr := reg.tracer; tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindBreaker, Detail: "closed"})
		}
	}
	reg.serialMu.Unlock()
}

// breakerState groups the abort-storm fields embedded in Registry.
type breakerState struct {
	serialMu     sync.Mutex
	breakerOpen  atomic.Bool
	abortStreak  atomic.Int64
	cooldownLeft atomic.Int64
	breakerTrips atomic.Int64
}
