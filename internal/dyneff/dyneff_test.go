package dyneff

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestBasicGetSet(t *testing.T) {
	reg := NewRegistry()
	r := NewRef(reg, 10)
	retries, err := reg.Run(func(tx *Tx) error {
		if v := tx.Get(r).(int); v != 10 {
			return fmt.Errorf("got %d", v)
		}
		tx.Set(r, 11)
		if !tx.AssertIn(r) {
			return errors.New("ref must be in dynamic set after access")
		}
		return nil
	})
	if err != nil || retries != 0 {
		t.Fatalf("retries=%d err=%v", retries, err)
	}
	if r.Peek().(int) != 11 {
		t.Fatalf("commit lost: %v", r.Peek())
	}
	if reg.Commits() != 1 {
		t.Fatalf("commits=%d", reg.Commits())
	}
}

func TestDynamicSetGrowth(t *testing.T) {
	reg := NewRegistry()
	refs := make([]*Ref, 10)
	for i := range refs {
		refs[i] = NewRef(reg, i)
	}
	_, err := reg.Run(func(tx *Tx) error {
		// Cavity-style iterative growth: each acquired ref leads to the
		// next (§7.1's Delaunay cavity discovery pattern).
		i := 0
		for i < len(refs) {
			v := tx.Get(refs[i]).(int)
			i = v + 1
		}
		r, w := tx.Sets()
		if r != 10 || w != 0 {
			return fmt.Errorf("sets = (%d,%d), want (10,0)", r, w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssertInFalseBeforeAccess(t *testing.T) {
	reg := NewRegistry()
	r := NewRef(reg, 0)
	reg.Run(func(tx *Tx) error {
		if tx.AssertIn(r) {
			t.Error("AssertIn must be false before any access")
		}
		tx.AddRead(r)
		if !tx.AssertIn(r) {
			t.Error("AssertIn must be true after AddRead")
		}
		tx.AddWrite(r)
		if !tx.AssertIn(r) {
			t.Error("AssertIn must remain true after upgrade")
		}
		return nil
	})
}

func TestUserErrorPropagates(t *testing.T) {
	reg := NewRegistry()
	want := errors.New("boom")
	_, err := reg.Run(func(tx *Tx) error { return want })
	if err != want {
		t.Fatalf("err=%v", err)
	}
}

// TestRollbackOnAbort forces a conflict and verifies the loser's writes are
// rolled back before retry.
func TestRollbackOnAbort(t *testing.T) {
	reg := NewRegistry()
	a := NewRef(reg, 0)
	b := NewRef(reg, 0)

	// Older section: acquires a, then (after the younger wrote b and is
	// trying to take a) acquires b.
	holdA := make(chan struct{})
	youngerRan := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		reg.Run(func(tx *Tx) error {
			tx.Set(a, 100)
			close(holdA)
			<-youngerRan
			tx.Set(b, 200) // forces the younger holder of b to abort
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		<-holdA
		attempt := 0
		reg.Run(func(tx *Tx) error {
			attempt++
			tx.Set(b, 999) // will be rolled back on the first attempt
			if attempt == 1 {
				close(youngerRan)
			}
			tx.Get(a) // conflicts with the older writer → abort
			return nil
		})
	}()
	wg.Wait()
	if got := a.Peek().(int); got != 100 {
		t.Errorf("a = %d, want 100", got)
	}
	// b must end at one of the committed values (200 from older, then 999
	// if the younger retried after; the younger reruns after the older
	// finished, so final b = 999) — but never a torn intermediate.
	if got := b.Peek().(int); got != 999 {
		t.Errorf("b = %d, want 999 (younger retried after older committed)", got)
	}
	if reg.Aborts() == 0 {
		t.Error("expected at least one abort")
	}
}

// TestTransferInvariant: concurrent sections move amounts between random
// accounts; the total must be conserved — the classic isolation test.
func TestTransferInvariant(t *testing.T) {
	reg := NewRegistry()
	const nAccounts = 20
	const nWorkers = 8
	const nOps = 200
	refs := make([]*Ref, nAccounts)
	for i := range refs {
		refs[i] = NewRef(reg, 100)
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for op := 0; op < nOps; op++ {
				i, j := rnd.Intn(nAccounts), rnd.Intn(nAccounts)
				if i == j {
					continue
				}
				amt := rnd.Intn(10)
				if _, err := reg.Run(func(tx *Tx) error {
					vi := tx.Get(refs[i]).(int)
					vj := tx.Get(refs[j]).(int)
					tx.Set(refs[i], vi-amt)
					tx.Set(refs[j], vj+amt)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	total := 0
	for _, r := range refs {
		total += r.Peek().(int)
	}
	if total != nAccounts*100 {
		t.Fatalf("money not conserved: %d != %d (isolation broken)", total, nAccounts*100)
	}
}

// TestCavityStress: sections grow overlapping cavities over a grid and
// rewrite every cell they own; every committed cavity must be internally
// consistent (all cells carry the same stamp).
func TestCavityStress(t *testing.T) {
	reg := NewRegistry()
	const n = 64
	cells := make([]*Ref, n)
	for i := range cells {
		cells[i] = NewRef(reg, [2]int{0, 0}) // (stamp, cavitySize)
	}
	var wg sync.WaitGroup
	const workers = 6
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(stamp int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(stamp)))
			for op := 0; op < 50; op++ {
				start := rnd.Intn(n)
				size := 1 + rnd.Intn(5)
				reg.Run(func(tx *Tx) error {
					// Discover the cavity dynamically: walk `size` cells.
					var cav []*Ref
					for k := 0; k < size; k++ {
						cav = append(cav, cells[(start+k)%n])
					}
					for _, c := range cav {
						tx.AddWrite(c)
					}
					for _, c := range cav {
						tx.Set(c, [2]int{stamp, size})
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	// Each cell must hold a committed (stamp, size) pair, never zero-stamp
	// unless untouched; torn cavities are unobservable at this granularity,
	// but undo-log correctness was exercised heavily via aborts.
	t.Logf("aborts=%d commits=%d", reg.Aborts(), reg.Commits())
	if reg.Commits() != int64(workers*50) {
		t.Fatalf("commits = %d, want %d", reg.Commits(), workers*50)
	}
}

func TestReadersDoNotConflict(t *testing.T) {
	reg := NewRegistry()
	r := NewRef(reg, 7)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg.Run(func(tx *Tx) error {
				if tx.Get(r).(int) != 7 {
					t.Error("bad read")
				}
				return nil
			})
		}()
	}
	wg.Wait()
	if reg.Aborts() != 0 {
		t.Errorf("readers aborted each other: %d aborts", reg.Aborts())
	}
}
