package dyneff_test

import (
	"errors"
	"testing"

	"twe/internal/core"
	"twe/internal/dyneff"
	"twe/internal/effect"
	"twe/internal/naive"
	"twe/internal/tree"
)

func es(s string) effect.Set { return effect.MustParse(s) }

// TestCancelMidSectionRollsBack is the regression test for the
// partial-write ordering bug: a task cancelled cooperatively in the
// middle of a dynamic-effects section winds down by returning Ctx.Err
// from fn, and every ref written before the wind-down must be rolled
// back — newest first — before the refs are released. Previously an
// error return committed the partial writes.
//
// The cancellation is injected deterministically with core.WithYield: the
// hook cancels the future at PointStart, so the body observes Ctx.Err
// between its two writes on every run.
func TestCancelMidSectionRollsBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() core.Scheduler
	}{
		{"naive", func() core.Scheduler { return naive.New() }},
		{"tree", func() core.Scheduler { return tree.New() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cause := errors.New("cancelled mid-section")
			rt := core.NewRuntime(tc.mk(), 2, core.WithYield(func(f *core.Future, p core.YieldPoint) {
				if p == core.PointStart && f.Task().Name == "section" {
					f.Cancel(cause)
				}
			}))
			defer rt.Shutdown()
			reg := dyneff.NewRegistry()
			a := dyneff.NewRef(reg, "oldA")
			b := dyneff.NewRef(reg, "oldB")

			task := core.NewTask("section", es("writes S"),
				func(ctx *core.Ctx, _ any) (any, error) {
					_, err := reg.Run(func(tx *dyneff.Tx) error {
						tx.Set(a, "dirtyA")
						if err := ctx.Err(); err != nil {
							return err // cooperative wind-down mid-section
						}
						tx.Set(b, "dirtyB")
						return nil
					})
					return nil, err
				})
			if _, err := rt.Execute(task, nil); !errors.Is(err, cause) {
				t.Fatalf("err = %v, want the cancellation cause", err)
			}
			if a.Peek() != "oldA" || b.Peek() != "oldB" {
				t.Fatalf("partial writes escaped: a=%v b=%v", a.Peek(), b.Peek())
			}
			// Both refs must be free for the next section.
			if _, err := reg.Run(func(tx *dyneff.Tx) error {
				tx.Set(a, "newA")
				tx.Set(b, "newB")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if a.Peek() != "newA" || b.Peek() != "newB" {
				t.Fatalf("refs not writable after cancelled section: a=%v b=%v", a.Peek(), b.Peek())
			}
		})
	}
}

// TestPanicInSectionContained: a panic inside a dynamic section rolls the
// section back, releases its refs, and surfaces through the task layer as
// a contained *PanicError — the scheduler and pool survive.
func TestPanicInSectionContained(t *testing.T) {
	rt := core.NewRuntime(tree.New(), 2)
	defer rt.Shutdown()
	reg := dyneff.NewRegistry()
	a := dyneff.NewRef(reg, 5)
	task := core.NewTask("bomb", es("writes S"),
		func(_ *core.Ctx, _ any) (any, error) {
			_, err := reg.Run(func(tx *dyneff.Tx) error {
				tx.Set(a, 99)
				panic("section bomb")
			})
			return nil, err
		})
	_, err := rt.Execute(task, nil)
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want contained *PanicError", err)
	}
	if a.Peek().(int) != 5 {
		t.Fatalf("a = %v, want rollback to 5", a.Peek())
	}
	// The runtime survives: an interfering successor completes.
	ok := core.NewTask("after", es("writes S"),
		func(_ *core.Ctx, _ any) (any, error) {
			_, err := reg.Run(func(tx *dyneff.Tx) error { tx.Set(a, 6); return nil })
			return nil, err
		})
	if _, err := rt.Execute(ok, nil); err != nil {
		t.Fatal(err)
	}
	if a.Peek().(int) != 6 {
		t.Fatalf("a = %v, want 6", a.Peek())
	}
}
