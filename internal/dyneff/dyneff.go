// Package dyneff implements the dynamic-effects extension of the TWE model
// (dissertation Ch. 7): support for tasks whose side effects depend on
// dynamic data structures and cannot be expressed statically — e.g. a mesh
// refinement task whose "cavity" of affected triangles is discovered while
// it runs.
//
// The paper's design maps onto this package as follows:
//
//   - References as regions (§7.2.1): a Ref is a managed cell that is its
//     own region, distinct from the static RPL tree.
//   - Dynamic reference sets (§7.2.2–7.2.3): each running dynamic section
//     (Tx) owns a read set and a write set of Refs; AddRead/AddWrite add
//     elements while the task executes. Get/Set acquire implicitly.
//   - Conflict detection (§7.5.2): a per-Ref ownership record (readers +
//     writer) detects conflicts between the dynamic effect sets of
//     concurrently running tasks. The paper tracks dynamic sets at
//     scheduler-tree nodes; this implementation centralizes the records on
//     the Refs themselves, which preserves the observable behaviour
//     (conflicts between dynamic effects are detected exactly) without
//     requiring the static RPL machinery to know about references.
//   - Abort and retry (§7.2.4): on a conflict with an older task the
//     younger section aborts — its writes are rolled back from an undo log,
//     its refs are released, and Run retries it after a backoff. Older
//     sections wait for younger holders instead, so the wait-for relation
//     only points from older to younger tasks and is acyclic: no deadlock,
//     and the oldest live section always makes progress.
//   - Asserting membership (§7.2.7): AssertIn checks that a Ref is already
//     in the section's dynamic set, the runtime counterpart of the static
//     #assertInSet check.
//
// The package is runtime-only; the corresponding static analysis for TWEL
// programs (§7.2.6) lives in internal/lang.
package dyneff

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"twe/internal/obs"
)

// Ref is a reference-as-region cell. Create with Registry.NewRef; access
// only through a Tx.
type Ref struct {
	id  uint64
	reg *Registry

	mu      sync.Mutex
	val     any
	writer  *Tx
	readers map[*Tx]struct{}
}

// ID returns the ref's unique id (useful for ordering and debugging).
func (r *Ref) ID() uint64 { return r.id }

// Peek returns the committed value without any conflict protection. It is
// intended for use after all dynamic sections completed (e.g. validating
// results in tests); concurrent use with running sections is unsafe by
// design, like reading a TWEJava field outside any task.
func (r *Ref) Peek() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Registry owns a universe of Refs and the abort/retry machinery.
type Registry struct {
	nextID  atomic.Uint64
	nextSeq atomic.Uint64
	aborts  atomic.Int64
	commits atomic.Int64
	cfg     Config
	tracer  *obs.Tracer
	breakerState
}

// NewRegistry returns an empty registry with the default Config.
func NewRegistry() *Registry { return NewRegistryWithConfig(Config{}) }

// NewRegistryWithConfig returns an empty registry with the given retry and
// breaker bounds (zero fields select defaults; see Config).
func NewRegistryWithConfig(c Config) *Registry {
	return &Registry{cfg: c.withDefaults()}
}

// NewRef allocates a managed cell holding v.
func NewRef(reg *Registry, v any) *Ref {
	return &Ref{id: reg.nextID.Add(1), reg: reg, val: v}
}

// Aborts returns the total number of aborted section attempts — the
// overhead signal reported in the Ch. 7 evaluation.
func (reg *Registry) Aborts() int64 { return reg.aborts.Load() }

// Commits returns the number of successfully committed sections.
func (reg *Registry) Commits() int64 { return reg.commits.Load() }

// Tx is one attempt at a dynamic-effects section: the pair of dynamic
// reference sets of the running task plus its undo log.
type Tx struct {
	reg  *Registry
	seq  uint64 // age: smaller = older = wins conflicts
	rs   map[*Ref]struct{}
	ws   map[*Ref]struct{}
	undo []undoEntry
}

type undoEntry struct {
	ref *Ref
	old any
}

// abortSignal is panicked by acquire on conflict and recovered by Run.
type abortSignal struct{ loser *Tx }

// ErrTooManyRetries is returned when a section failed to commit within
// Config.MaxAttempts attempts.
var ErrTooManyRetries = errors.New("dyneff: section exceeded retry limit")

// Run executes fn as a dynamic-effects section, retrying on conflicts
// with capped exponential backoff until it commits or exhausts the
// registry's attempt budget. fn must confine its side effects to Get/Set
// on Refs and otherwise be safe to re-execute.
//
// Every exit path releases the section's refs exactly once, and any path
// that does not commit — conflict abort, fn returning an error, or fn
// panicking (including a cooperative-cancellation wind-down that errors
// out mid-section) — rolls the undo log back *before* releasing, so
// partial writes are never visible to other sections. A foreign panic is
// re-raised after the cleanup for the task layer to contain.
//
// Run returns the number of aborted attempts.
func (reg *Registry) Run(fn func(tx *Tx) error) (retries int, err error) {
	seq := reg.nextSeq.Add(1)
	for attempt := 1; ; attempt++ {
		tx := &Tx{reg: reg, seq: seq, rs: map[*Ref]struct{}{}, ws: map[*Ref]struct{}{}}
		aborted, err := reg.attempt(tx, fn)
		if !aborted {
			if err != nil {
				// A failed section must not commit its partial writes.
				tx.rollback()
				tx.release()
				return retries, err
			}
			tx.release()
			reg.commits.Add(1)
			return retries, nil
		}
		tx.rollback()
		tx.release()
		reg.aborts.Add(1)
		retries++
		if attempt >= reg.cfg.MaxAttempts {
			return retries, ErrTooManyRetries
		}
		if tr := reg.tracer; tr != nil {
			tr.Metrics().DyneffRetries.Add(1)
			tr.Emit(obs.Event{Kind: obs.KindRetry, Task: seq, Detail: fmt.Sprintf("attempt %d", attempt)})
		}
		reg.noteAbort()
		time.Sleep(reg.backoff(seq, attempt))
	}
}

// attempt runs fn once under the breaker, converting a conflict abort
// into a flag. The undo log is intact on return (the caller rolls back);
// a foreign panic is cleaned up here — rollback, release, breaker exit —
// then re-raised.
func (reg *Registry) attempt(tx *Tx, fn func(tx *Tx) error) (aborted bool, err error) {
	serialized := reg.breakerEnter()
	committed := false
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				reg.breakerExit(serialized, false)
				aborted = true
				return
			}
			tx.rollback()
			tx.release()
			reg.breakerExit(serialized, false)
			panic(r)
		}
		reg.breakerExit(serialized, committed)
	}()
	err = fn(tx)
	committed = err == nil
	return false, err
}

// rollback restores every written ref from the undo log, newest first.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		e.ref.mu.Lock()
		e.ref.val = e.old
		e.ref.mu.Unlock()
	}
	tx.undo = nil
}

// release removes tx from every acquired ref's ownership record.
func (tx *Tx) release() {
	for r := range tx.ws {
		r.mu.Lock()
		if r.writer == tx {
			r.writer = nil
		}
		r.mu.Unlock()
	}
	for r := range tx.rs {
		r.mu.Lock()
		delete(r.readers, tx)
		r.mu.Unlock()
	}
}

// AddRead adds r to the section's dynamic read set (§7.2.3), blocking or
// aborting per the age policy on conflict with another section's write.
func (tx *Tx) AddRead(r *Ref) {
	if _, ok := tx.rs[r]; ok {
		return
	}
	if _, ok := tx.ws[r]; ok {
		return // write access implies read access
	}
	tx.acquire(r, false)
	tx.rs[r] = struct{}{}
}

// AddWrite adds r to the section's dynamic write set (§7.2.3).
func (tx *Tx) AddWrite(r *Ref) {
	if _, ok := tx.ws[r]; ok {
		return
	}
	tx.acquire(r, true)
	tx.ws[r] = struct{}{}
	delete(tx.rs, r) // upgraded
}

// acquire records tx on r's ownership record, implementing the conflict
// policy: a conflicting section that is younger than some holder aborts;
// an older section waits for the younger holders to finish or abort.
func (tx *Tx) acquire(r *Ref, write bool) {
	for {
		r.mu.Lock()
		oldestHolder := uint64(0)
		conflict := false
		if r.writer != nil && r.writer != tx {
			conflict = true
			oldestHolder = r.writer.seq
		}
		if write {
			for rd := range r.readers {
				if rd == tx {
					continue
				}
				conflict = true
				if oldestHolder == 0 || rd.seq < oldestHolder {
					oldestHolder = rd.seq
				}
			}
		}
		if !conflict {
			if write {
				r.writer = tx
				delete(r.readers, tx)
			} else {
				if r.readers == nil {
					r.readers = make(map[*Tx]struct{})
				}
				r.readers[tx] = struct{}{}
			}
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		if oldestHolder < tx.seq {
			// A holder is older: the younger requester aborts (§7.2.4).
			panic(abortSignal{loser: tx})
		}
		// The requester is the oldest party: wait for younger holders to
		// finish or abort; acyclic by the age argument, so this terminates.
		time.Sleep(time.Microsecond)
	}
}

// AssertIn reports whether r is in the section's dynamic sets (§7.2.7);
// write access implies read membership.
func (tx *Tx) AssertIn(r *Ref) bool {
	if _, ok := tx.ws[r]; ok {
		return true
	}
	_, ok := tx.rs[r]
	return ok
}

// Get reads the ref's value, adding it to the read set first.
func (tx *Tx) Get(r *Ref) any {
	tx.AddRead(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Set writes the ref's value, adding it to the write set first and logging
// the old value for rollback.
func (tx *Tx) Set(r *Ref, v any) {
	tx.AddWrite(r)
	r.mu.Lock()
	tx.undo = append(tx.undo, undoEntry{ref: r, old: r.val})
	r.val = v
	r.mu.Unlock()
}

// Sets returns the sizes of the dynamic (read, write) sets; used by tests
// and by the Ch. 7 overhead measurements.
func (tx *Tx) Sets() (reads, writes int) { return len(tx.rs), len(tx.ws) }

// String renders a short description for diagnostics.
func (tx *Tx) String() string {
	return fmt.Sprintf("tx(seq=%d, |R|=%d, |W|=%d)", tx.seq, len(tx.rs), len(tx.ws))
}
