// Package rpl implements Region Path Lists (RPLs), the hierarchical region
// descriptors of the DPJ/TWEJava effect system (Heumann & Adve, PPoPP 2013,
// §2.3.1). An RPL is a colon-separated list of elements rooted at the
// implicit region Root. Elements are simple names, run-time array indices
// [i], or the wildcards * (any sequence of zero or more elements) and [?]
// (any single index). RPLs without wildcards are "fully specified" and name
// a single region; RPLs with wildcards denote sets of regions.
//
// The package provides the two relations everything else is built on:
//
//   - Disjoint: the region sets denoted by two RPLs do not overlap, so a
//     read/write on one can never touch the other.
//   - Included (⊆, "nested under" in DPJ terms is not used here; TWE uses
//     set inclusion of the denoted region sets): every region denoted by the
//     first RPL is also denoted by the second.
//
// These are the dynamic RPLs of the paper: region parameters and index
// expressions have already been evaluated to concrete names and integers.
package rpl

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the element forms of §2.3.1.
type Kind uint8

const (
	// Name is a simple region name element such as Top or TF.
	Name Kind = iota
	// Index is a run-time array index element [i].
	Index
	// Star is the * wildcard, matching any sequence of zero or more
	// elements.
	Star
	// AnyIndex is the [?] wildcard, matching any single index element.
	AnyIndex
	// Param is a symbolic index element [p] naming a method or task
	// parameter whose run-time value is unknown to the static checker.
	// Two occurrences of the same parameter denote the same (unknown)
	// index; different parameters may alias, so the relations treat them
	// conservatively. DPJ's static RPLs have exactly this element form;
	// dynamic RPLs never contain it (parameters are substituted at run
	// time, §2.3.1).
	Param
)

// Elem is one element of an RPL.
type Elem struct {
	Kind Kind
	// Name holds the region name when Kind == Name.
	Name string
	// Index holds the array index when Kind == Index.
	Index int
}

// N returns a simple name element.
func N(name string) Elem { return Elem{Kind: Name, Name: name} }

// Idx returns an index element [i].
func Idx(i int) Elem { return Elem{Kind: Index, Index: i} }

// Any is the * wildcard element.
var Any = Elem{Kind: Star}

// AnyIdx is the [?] wildcard element.
var AnyIdx = Elem{Kind: AnyIndex}

// P returns a symbolic parameter index element [name].
func P(name string) Elem { return Elem{Kind: Param, Name: name} }

// String renders the element in the paper's surface syntax.
func (e Elem) String() string {
	switch e.Kind {
	case Name:
		return e.Name
	case Index:
		return "[" + strconv.Itoa(e.Index) + "]"
	case Star:
		return "*"
	case AnyIndex:
		return "[?]"
	case Param:
		return "[" + e.Name + "]"
	default:
		return fmt.Sprintf("<bad elem kind %d>", e.Kind)
	}
}

// IsWildcard reports whether the element is * or [?].
func (e Elem) IsWildcard() bool { return e.Kind == Star || e.Kind == AnyIndex }

// sameConcrete reports whether two non-Star elements name the same concrete
// element, treating [?] as overlapping any index. It must only be called
// with Kinds other than Star.
func overlapsElem(a, b Elem) bool {
	// A parameter element stands for an unknown index: it can coincide
	// with any index-like element (conservatively including a different
	// parameter, which may alias), but never with a name.
	if a.Kind == Param || b.Kind == Param {
		return a.Kind != Name && b.Kind != Name
	}
	if a.Kind == AnyIndex {
		return b.Kind == Index || b.Kind == AnyIndex
	}
	if b.Kind == AnyIndex {
		return a.Kind == Index
	}
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == Name {
		return a.Name == b.Name
	}
	return a.Index == b.Index
}

// RPL is a region path list. The implicit leading Root element is not
// stored; the zero value denotes the region Root itself.
type RPL struct {
	elems []Elem
	// iid is the intern id stamped by an effect.Interner (0 = not
	// interned). The top InternIDInstanceBits identify the interner
	// instance, the rest the slot; ids are only comparable within one
	// instance. Only fully specified RPLs ever carry an id, and two RPLs
	// with equal nonzero ids from the same instance denote the identical
	// region — which is what licenses the O(1) fast paths in Disjoint and
	// Included.
	iid uint32
}

// Intern-id layout: an id packs an interner-instance tag in the top bits
// and a slot number in the low bits, so ids from different interners are
// never confused for each other.
const (
	// InternIDInstanceBits is the width of the instance tag.
	InternIDInstanceBits = 8
	// InternIDSlotBits is the width of the slot number.
	InternIDSlotBits = 32 - InternIDInstanceBits
)

// WithInternID returns a copy of r carrying the given intern id. Callers
// (the effect.Interner) must only stamp fully specified RPLs, and must
// guarantee that within one interner instance equal ids ⇔ equal regions.
func (r RPL) WithInternID(id uint32) RPL {
	r.iid = id
	return r
}

// InternID returns the intern id stamped on r (0 = not interned).
func (r RPL) InternID() uint32 { return r.iid }

// sameInternInstance reports whether two nonzero intern ids came from the
// same interner instance and are therefore comparable.
func sameInternInstance(a, b uint32) bool {
	return a>>InternIDSlotBits == b>>InternIDSlotBits
}

// New builds an RPL from elements (Root-implicit).
func New(elems ...Elem) RPL {
	cp := make([]Elem, len(elems))
	copy(cp, elems)
	return RPL{elems: cp}
}

// Root is the RPL consisting only of the implicit Root element.
var Root = RPL{}

// RootStar is the RPL Root:*, which covers every region. It is the region
// of the top effect "writes Root:*".
var RootStar = New(Any)

// Parse parses the surface syntax "A:B:[3]:*:[?]". A leading "Root:" or a
// bare "Root" is accepted and stripped. Whitespace around elements is
// ignored.
func Parse(s string) (RPL, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "Root" {
		return Root, nil
	}
	parts := strings.Split(s, ":")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	// The implicit leading Root element is accepted and stripped after
	// tokenizing, so "Root : A" and "Root:A" read the same.
	if parts[0] == "Root" {
		parts = parts[1:]
	}
	elems := make([]Elem, 0, len(parts))
	for _, p := range parts {
		switch {
		case p == "":
			return RPL{}, fmt.Errorf("rpl: empty element in %q", s)
		case p == "*":
			elems = append(elems, Any)
		case p == "[?]":
			elems = append(elems, AnyIdx)
		case strings.HasPrefix(p, "[") && strings.HasSuffix(p, "]"):
			inner := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(p, "["), "]"))
			if n, err := strconv.Atoi(inner); err == nil {
				elems = append(elems, Idx(n))
			} else if isIdent(inner) {
				elems = append(elems, P(inner))
			} else {
				return RPL{}, fmt.Errorf("rpl: bad index element %q", p)
			}
		default:
			if strings.ContainsAny(p, "[]*:? \t") {
				return RPL{}, fmt.Errorf("rpl: malformed element %q in %q", p, s)
			}
			elems = append(elems, N(p))
		}
	}
	return RPL{elems: elems}, nil
}

// MustParse is Parse that panics on error; for literals in tests and
// examples.
func MustParse(s string) RPL {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// String renders the RPL with its implicit Root prefix.
func (r RPL) String() string {
	if len(r.elems) == 0 {
		return "Root"
	}
	var b strings.Builder
	b.WriteString("Root")
	for _, e := range r.elems {
		b.WriteByte(':')
		b.WriteString(e.String())
	}
	return b.String()
}

// Len returns the number of explicit elements (excluding Root).
func (r RPL) Len() int { return len(r.elems) }

// Elem returns the i-th explicit element.
func (r RPL) Elem(i int) Elem { return r.elems[i] }

// Elems returns a copy of the element slice.
func (r RPL) Elems() []Elem {
	cp := make([]Elem, len(r.elems))
	copy(cp, r.elems)
	return cp
}

// Append returns r extended with more elements.
func (r RPL) Append(elems ...Elem) RPL {
	out := make([]Elem, 0, len(r.elems)+len(elems))
	out = append(out, r.elems...)
	out = append(out, elems...)
	return RPL{elems: out}
}

// FullySpecified reports whether the RPL contains no wildcard or parameter
// elements and therefore denotes a single known region.
func (r RPL) FullySpecified() bool {
	for _, e := range r.elems {
		if e.IsWildcard() || e.Kind == Param {
			return false
		}
	}
	return true
}

// HasWildcard reports whether the RPL contains * or [?].
func (r RPL) HasWildcard() bool { return !r.FullySpecified() }

// WildcardFreePrefixLen returns the length of the maximal wildcard-free
// prefix: the number of leading elements before the first * or [?].
func (r RPL) WildcardFreePrefixLen() int {
	for i, e := range r.elems {
		if e.IsWildcard() {
			return i
		}
	}
	return len(r.elems)
}

// WildcardFreePrefix returns the maximal wildcard-free prefix as an RPL.
func (r RPL) WildcardFreePrefix() RPL {
	n := r.WildcardFreePrefixLen()
	return RPL{elems: r.elems[:n:n]}
}

// Equal reports syntactic equality of two RPLs.
func (r RPL) Equal(s RPL) bool {
	if len(r.elems) != len(s.elems) {
		return false
	}
	for i := range r.elems {
		if r.elems[i] != s.elems[i] {
			return false
		}
	}
	return true
}

// Disjoint reports whether the region sets denoted by r and s do not
// overlap. Per §2.3.1: two fully specified RPLs are disjoint unless
// identical; RPLs with wildcards are disjoint if every pair of denoted
// regions is disjoint. The check compares element-by-element from the left
// until a * element is encountered in either RPL, then from the right
// (stopping short of consumed prefix elements), declaring the RPLs disjoint
// as soon as two corresponding non-* elements fail to overlap.
//
// Examples (paper §2.3.1): disjoint pairs — (A, A:B), (A:[i], A:B),
// (A:*:X, A:B); non-disjoint pairs — (A:*, A), (A:* , A:B:C), (A:*, A:[i]).
func (r RPL) Disjoint(s RPL) bool {
	// Interned fast path: both RPLs are fully specified (the interner
	// stamps nothing else), and two fully specified RPLs are disjoint
	// unless identical — which within one interner instance is exactly an
	// id compare.
	if r.iid != 0 && s.iid != 0 && sameInternInstance(r.iid, s.iid) {
		return r.iid != s.iid
	}
	a, b := r.elems, s.elems
	// Left scan until either has a *.
	i := 0
	for {
		aDone, bDone := i >= len(a), i >= len(b)
		if aDone && bDone {
			return false // identical fully-specified prefix paths
		}
		if aDone {
			// a is a proper prefix of b. They denote the same region only if
			// b's remainder can expand to the empty sequence, i.e. consists
			// solely of * elements (e.g. A vs A:* overlap, A vs A:B do not).
			return !allStar(b[i:])
		}
		if bDone {
			return !allStar(a[i:])
		}
		if a[i].Kind == Star || b[i].Kind == Star {
			break
		}
		if !overlapsElem(a[i], b[i]) {
			return true
		}
		i++
	}
	// Right scan over the remaining suffixes a[i:], b[i:].
	ja, jb := len(a)-1, len(b)-1
	for ja >= i && jb >= i {
		if a[ja].Kind == Star || b[jb].Kind == Star {
			return false // a * can absorb the rest; possible overlap
		}
		if !overlapsElem(a[ja], b[jb]) {
			return true
		}
		ja--
		jb--
	}
	// One suffix exhausted. If the other side's remaining middle consists
	// only of elements a * on the shorter side could match, overlap is
	// possible. At this point the element at position i on the exhausted
	// side (if any) was a *; conservatively report possible overlap unless
	// the exhausted side has no * at all — impossible here because the left
	// scan only stops at a *.
	return false
}

// isIdent reports whether s is a simple identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// allStar reports whether every element of the slice is the * wildcard.
func allStar(elems []Elem) bool {
	for _, e := range elems {
		if e.Kind != Star {
			return false
		}
	}
	return true
}

// Overlaps is the negation of Disjoint.
func (r RPL) Overlaps(s RPL) bool { return !r.Disjoint(s) }

// Included reports r ⊆ s: every fully specified RPL denoted by r is also
// denoted by s. Wildcards in s act as patterns (* matches any element
// sequence, [?] any index); wildcards in r universally quantify, so an r
// wildcard can only be covered by a corresponding s wildcard.
func (r RPL) Included(s RPL) bool {
	// Interned fast path: both fully specified, so inclusion degenerates
	// to identity, an id compare within one interner instance.
	if r.iid != 0 && s.iid != 0 && sameInternInstance(r.iid, s.iid) {
		return r.iid == s.iid
	}
	return includedFrom(r.elems, s.elems)
}

func includedFrom(a, b []Elem) bool {
	// b empty: a must be empty too.
	if len(b) == 0 {
		return len(a) == 0
	}
	switch b[0].Kind {
	case Star:
		// b's * matches zero elements (skip it) or one+ (consume one of a).
		if includedFrom(a, b[1:]) {
			return true
		}
		if len(a) > 0 {
			// A leading * in a is a set of sequences; b's * absorbs any of
			// them, so consuming it wholesale is sound and complete here.
			return includedFrom(a[1:], b)
		}
		return false
	case AnyIndex:
		if len(a) == 0 {
			return false
		}
		// [?] in b covers any index-like element — a concrete index, [?],
		// or a parameter — but not a name or a * in a (a * denotes
		// multi-element sequences too).
		if a[0].Kind == Index || a[0].Kind == AnyIndex || a[0].Kind == Param {
			return includedFrom(a[1:], b[1:])
		}
		return false
	default: // Name or Index in b: a must begin with the identical element.
		if len(a) == 0 || a[0] != b[0] {
			return false
		}
		return includedFrom(a[1:], b[1:])
	}
}

// Under reports whether r is nested under s: r denotes only regions that lie
// in the subtree rooted at some region of s. Equivalently r ⊆ s:* (with s
// extended by a trailing *). This is the relation between an effect and the
// scheduler-tree subtree it can reach.
func (r RPL) Under(s RPL) bool {
	return includedFrom(r.elems, append(s.Elems(), Any))
}

// Compare gives a total order over RPLs (lexicographic over elements), used
// for deterministic iteration and consistent lock ordering.
func (r RPL) Compare(s RPL) int {
	a, b := r.elems, s.elems
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := compareElem(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareElem(a, b Elem) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case Name:
		return strings.Compare(a.Name, b.Name)
	case Index:
		switch {
		case a.Index < b.Index:
			return -1
		case a.Index > b.Index:
			return 1
		}
	}
	return 0
}
