package rpl

import "testing"

// Brute-force cross-validation of Disjoint and Included against an
// explicit enumerator. Patterns are every RPL of length ≤ maxPatternLen
// over {A, B, [0], [1], *, [?]}; their denotations are computed over the
// universe of fully specified RPLs of length ≤ maxWordLen over
// {A, B, [0], [1]}.
//
// The universe bound is not a soundness hole for the disjointness check:
// if two patterns of length ≤ 3 overlap at all, a common word of length
// ≤ 6 exists (any longer witness has a position absorbed by a * in both
// patterns, which can be pumped out), so maxWordLen = 6 makes the bounded
// check exact for overlap witnesses.
const (
	maxPatternLen = 3
	maxWordLen    = 6
)

// patternAlphabet spans every element form of a dynamic RPL.
var patternAlphabet = []Elem{N("A"), N("B"), Idx(0), Idx(1), Any, AnyIdx}

// wordAlphabet spans the fully specified elements the wildcards range over.
var wordAlphabet = []Elem{N("A"), N("B"), Idx(0), Idx(1)}

// enumSeqs returns every element sequence of length 0..maxLen over the
// alphabet, in a deterministic order.
func enumSeqs(alphabet []Elem, maxLen int) [][]Elem {
	seqs := [][]Elem{{}}
	frontier := [][]Elem{{}}
	for l := 1; l <= maxLen; l++ {
		var next [][]Elem
		for _, s := range frontier {
			for _, e := range alphabet {
				ext := make([]Elem, len(s), len(s)+1)
				copy(ext, s)
				ext = append(ext, e)
				next = append(next, ext)
			}
		}
		seqs = append(seqs, next...)
		frontier = next
	}
	return seqs
}

// matchSeq is the reference matcher: does the pattern denote the fully
// specified word? * matches any (possibly empty) element sequence, [?] any
// single index element; everything else matches itself.
func matchSeq(pattern, word []Elem) bool {
	if len(pattern) == 0 {
		return len(word) == 0
	}
	switch pattern[0].Kind {
	case Star:
		return matchSeq(pattern[1:], word) ||
			(len(word) > 0 && matchSeq(pattern, word[1:]))
	case AnyIndex:
		return len(word) > 0 && word[0].Kind == Index && matchSeq(pattern[1:], word[1:])
	default:
		return len(word) > 0 && word[0] == pattern[0] && matchSeq(pattern[1:], word[1:])
	}
}

// bitset is a packed denotation over the word universe.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }
func (b bitset) intersects(c bitset) bool {
	for i := range b {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}
func (b bitset) subsetOf(c bitset) bool {
	for i := range b {
		if b[i]&^c[i] != 0 {
			return false
		}
	}
	return true
}

// denote computes the pattern's denotation over the universe.
func denote(pattern []Elem, universe [][]Elem) bitset {
	b := newBitset(len(universe))
	for i, w := range universe {
		if matchSeq(pattern, w) {
			b.set(i)
		}
	}
	return b
}

// witness returns a word in both denotations, for failure messages.
func witness(universe [][]Elem, b, c bitset) RPL {
	for i := range universe {
		if b[i/64]&c[i/64]&(1<<(i%64)) != 0 {
			return New(universe[i]...)
		}
	}
	return Root
}

// counterexample returns a word in b but not c.
func counterexample(universe [][]Elem, b, c bitset) RPL {
	for i := range universe {
		if b[i/64]&^c[i/64]&(1<<(i%64)) != 0 {
			return New(universe[i]...)
		}
	}
	return Root
}

func starFree(p []Elem) bool {
	for _, e := range p {
		if e.Kind == Star {
			return false
		}
	}
	return true
}

// TestDisjointIncludedBruteForce checks, for every pair of patterns:
//
//   - Disjoint soundness: Disjoint ⇒ the denotations share no word. This is
//     strict (no bounded-universe false alarms): a true overlap always has a
//     witness within maxWordLen.
//   - Disjoint exactness on the *-free fragment: without * the relation is
//     decidable position-by-position, so Disjoint must equal the enumerator.
//   - Disjoint symmetry.
//   - Included soundness: Included ⇒ denotation subset over the universe.
//   - Included exactness on fully specified pairs (⊆ iff equal) and on the
//     *-free fragment.
func TestDisjointIncludedBruteForce(t *testing.T) {
	universe := enumSeqs(wordAlphabet, maxWordLen)
	patterns := enumSeqs(patternAlphabet, maxPatternLen)

	dens := make([]bitset, len(patterns))
	rpls := make([]RPL, len(patterns))
	for i, p := range patterns {
		dens[i] = denote(p, universe)
		rpls[i] = New(p...)
	}
	t.Logf("%d patterns, %d-word universe", len(patterns), len(universe))

	bad := 0
	fail := func(format string, args ...any) {
		bad++
		if bad <= 20 {
			t.Errorf(format, args...)
		}
	}
	for i := range patterns {
		for j := range patterns {
			r, s := rpls[i], rpls[j]
			disjoint := r.Disjoint(s)
			overlapBF := dens[i].intersects(dens[j])

			if disjoint && overlapBF {
				fail("Disjoint(%v, %v) = true, but both denote %v",
					r, s, witness(universe, dens[i], dens[j]))
			}
			if disjoint != s.Disjoint(r) {
				fail("Disjoint(%v, %v) != Disjoint(%v, %v)", r, s, s, r)
			}
			if starFree(patterns[i]) && starFree(patterns[j]) && disjoint == overlapBF {
				fail("star-free Disjoint(%v, %v) = %v, enumerator says overlap=%v",
					r, s, disjoint, overlapBF)
			}

			included := r.Included(s)
			subsetBF := dens[i].subsetOf(dens[j])
			if included && !subsetBF {
				fail("Included(%v, %v) = true, but %v is denoted only by the first",
					r, s, counterexample(universe, dens[i], dens[j]))
			}
			if r.FullySpecified() && s.FullySpecified() && included != r.Equal(s) {
				fail("fully specified Included(%v, %v) = %v, want %v", r, s, included, r.Equal(s))
			}
			if starFree(patterns[i]) && starFree(patterns[j]) && included != subsetBF {
				fail("star-free Included(%v, %v) = %v, enumerator says subset=%v",
					r, s, included, subsetBF)
			}
		}
	}
	if bad > 20 {
		t.Errorf("... and %d more failures", bad-20)
	}
}

// TestParamRelationsBruteForce checks the relations on patterns containing
// symbolic parameter indices [p]. A parameter stands for one unknown index,
// consistent across both RPLs of a comparison; distinct parameters may
// alias. Soundness therefore quantifies over every assignment: Disjoint
// (resp. Included) may only hold if it holds for all substitutions of the
// parameters by concrete indices.
func TestParamRelationsBruteForce(t *testing.T) {
	alphabet := []Elem{N("A"), Idx(0), Idx(1), AnyIdx, P("p"), P("q")}
	// Words need index [2] so two parameters can take a value no concrete
	// index element of a pattern mentions.
	words := []Elem{N("A"), Idx(0), Idx(1), Idx(2)}
	universe := enumSeqs(words, 4)
	patterns := enumSeqs(alphabet, 2)

	subst := func(p []Elem, pv, qv int) []Elem {
		out := make([]Elem, len(p))
		for i, e := range p {
			if e.Kind == Param {
				if e.Name == "p" {
					out[i] = Idx(pv)
				} else {
					out[i] = Idx(qv)
				}
			} else {
				out[i] = e
			}
		}
		return out
	}

	for i := range patterns {
		for j := range patterns {
			r, s := New(patterns[i]...), New(patterns[j]...)
			disjoint := r.Disjoint(s)
			included := r.Included(s)
			if !disjoint && !included {
				continue
			}
			for pv := 0; pv <= 2; pv++ {
				for qv := 0; qv <= 2; qv++ {
					di := denote(subst(patterns[i], pv, qv), universe)
					dj := denote(subst(patterns[j], pv, qv), universe)
					if disjoint && di.intersects(dj) {
						t.Errorf("Disjoint(%v, %v) = true, but with [p]=%d [q]=%d both denote %v",
							r, s, pv, qv, witness(universe, di, dj))
					}
					if included && !di.subsetOf(dj) {
						t.Errorf("Included(%v, %v) = true, but with [p]=%d [q]=%d: %v not covered",
							r, s, pv, qv, counterexample(universe, di, dj))
					}
				}
			}
		}
	}
}
