package rpl

import (
	"math/rand"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func mp(s string) RPL { return MustParse(s) }

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Root", "Root"},
		{"", "Root"},
		{"A", "Root:A"},
		{"Root:A", "Root:A"},
		{"A:B:C", "Root:A:B:C"},
		{"A:[3]", "Root:A:[3]"},
		{"A:*", "Root:A:*"},
		{"A:[?]:B", "Root:A:[?]:B"},
		{" A : [1] ", "Root:A:[1]"},
	}
	for _, c := range cases {
		r, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := r.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"A::B", "A:[x+y]", "A:[]", ":A", "A:[1x]"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

// TestParamElements covers the symbolic [param] elements used by the
// static checker (DPJ static RPLs).
func TestParamElements(t *testing.T) {
	p := mp("A:[i]:B")
	if p.String() != "Root:A:[i]:B" {
		t.Fatalf("param parse/print: %s", p)
	}
	if p.FullySpecified() {
		t.Error("param RPL is not fully specified")
	}
	cases := []struct {
		a, b     string
		disjoint bool
	}{
		{"A:[i]", "A:[i]", false}, // same param: same region
		{"A:[i]", "A:[j]", false}, // different params may alias
		{"A:[i]", "A:[3]", false}, // param may equal any index
		{"A:[i]", "A:B", true},    // param never equals a name
		{"A:[i]", "B:[i]", true},  // distinct prefixes
		{"A:[i]:X", "A:[i]:Y", true},
	}
	for _, c := range cases {
		if got := mp(c.a).Disjoint(mp(c.b)); got != c.disjoint {
			t.Errorf("Disjoint(%s, %s) = %v, want %v", c.a, c.b, got, c.disjoint)
		}
	}
	incl := []struct {
		a, b string
		want bool
	}{
		{"A:[i]", "A:[i]", true},
		{"A:[i]", "A:[?]", true},
		{"A:[i]", "A:*", true},
		{"A:[i]", "A:[j]", false}, // cannot prove equality
		{"A:[3]", "A:[i]", false},
		{"A:[?]", "A:[i]", false},
	}
	for _, c := range incl {
		if got := mp(c.a).Included(mp(c.b)); got != c.want {
			t.Errorf("Included(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFullySpecified(t *testing.T) {
	if !mp("A:B:[1]").FullySpecified() {
		t.Error("A:B:[1] should be fully specified")
	}
	if mp("A:*").FullySpecified() {
		t.Error("A:* should not be fully specified")
	}
	if mp("A:[?]").FullySpecified() {
		t.Error("A:[?] should not be fully specified")
	}
}

func TestWildcardFreePrefix(t *testing.T) {
	cases := []struct {
		in, want string
		n        int
	}{
		{"A:B:C", "Root:A:B:C", 3},
		{"A:*:C", "Root:A", 1},
		{"*", "Root", 0},
		{"A:[1]:[?]", "Root:A:[1]", 2},
	}
	for _, c := range cases {
		r := mp(c.in)
		if got := r.WildcardFreePrefixLen(); got != c.n {
			t.Errorf("%s prefix len = %d, want %d", c.in, got, c.n)
		}
		if got := r.WildcardFreePrefix().String(); got != c.want {
			t.Errorf("%s prefix = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestDisjointPaperExamples checks the exact pairs listed in §2.3.1.
func TestDisjointPaperExamples(t *testing.T) {
	disjoint := [][2]string{
		{"A", "A:B"},
		{"A:[1]", "A:B"},
		{"A:*:X", "A:B"},
	}
	notDisjoint := [][2]string{
		{"A:*", "A"},
		{"A:*", "A:B:C"},
		{"A:*", "A:[1]"},
	}
	for _, p := range disjoint {
		a, b := mp(p[0]), mp(p[1])
		if !a.Disjoint(b) {
			t.Errorf("%s # %s: want disjoint", a, b)
		}
		if !b.Disjoint(a) {
			t.Errorf("%s # %s: want disjoint (sym)", b, a)
		}
	}
	for _, p := range notDisjoint {
		a, b := mp(p[0]), mp(p[1])
		if a.Disjoint(b) {
			t.Errorf("%s # %s: want overlap", a, b)
		}
		if b.Disjoint(a) {
			t.Errorf("%s # %s: want overlap (sym)", b, a)
		}
	}
}

func TestDisjointMore(t *testing.T) {
	cases := []struct {
		a, b string
		want bool // disjoint?
	}{
		{"Root", "Root", false},
		{"Root", "A", true},
		{"Root", "*", false},
		{"A", "A", false},
		{"A", "B", true},
		{"A:[1]", "A:[1]", false},
		{"A:[1]", "A:[2]", true},
		{"A:[1]", "A:[?]", false},
		{"A:[?]", "A:[?]", false},
		{"A:[?]", "A:B", true},
		{"A:*", "B:*", true},
		{"A:*", "A:*", false},
		{"A:*:X", "A:*:Y", true},
		{"A:*:X", "A:*:X", false},
		{"A:*:X", "A:B:X", false},
		{"*:X", "A:B", true},
		{"*:X", "A:X", false},
		{"A:B", "A:B:*", false}, // A:B:* with * empty = A:B
		{"A:B", "A:B:C:*", true},
		{"A:B:*", "A:C:*", true},
	}
	for _, c := range cases {
		a, b := mp(c.a), mp(c.b)
		if got := a.Disjoint(b); got != c.want {
			t.Errorf("Disjoint(%s, %s) = %v, want %v", a, b, got, c.want)
		}
		if got := b.Disjoint(a); got != c.want {
			t.Errorf("Disjoint(%s, %s) = %v, want %v (sym)", b, a, got, c.want)
		}
	}
}

func TestIncluded(t *testing.T) {
	cases := []struct {
		a, b string
		want bool // a ⊆ b?
	}{
		{"A", "A", true},
		{"A", "B", false},
		{"A", "A:*", true},
		{"Root", "*", true},
		{"A:B", "A:*", true},
		{"A:B:C", "A:*", true},
		{"A:*", "A:*", true},
		{"A:*", "A", false},
		{"A:*", "*", true},
		{"A:[1]", "A:[?]", true},
		{"A:[?]", "A:[1]", false},
		{"A:[?]", "A:[?]", true},
		{"A:[1]", "A:*", true},
		{"A:B", "A:B:*", true}, // zero-expansion of trailing *
		{"A:*:X", "A:*", true},
		{"A:*", "A:*:X", false},
		{"B:*", "A:*", false},
		{"A:B:X", "A:*:X", true},
		{"A:X:B", "A:*:X", false},
	}
	for _, c := range cases {
		a, b := mp(c.a), mp(c.b)
		if got := a.Included(b); got != c.want {
			t.Errorf("Included(%s, %s) = %v, want %v", a, b, got, c.want)
		}
	}
}

func TestUnder(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"A:B", "A", true},
		{"A", "A", true},
		{"A", "A:B", false},
		{"A:*", "A", true},
		{"B", "A", false},
	}
	for _, c := range cases {
		if got := mp(c.a).Under(mp(c.b)); got != c.want {
			t.Errorf("Under(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// --- Property-based tests against an enumeration oracle ----------------
//
// We restrict to a tiny universe (names A,B; indices 0,1; length <= 3) and
// enumerate every fully specified RPL an RPL pattern denotes within a
// bounded expansion length. Disjoint/Included must then agree with set
// disjointness/inclusion on the denotations, except that Disjoint may be
// conservative (reporting overlap where there is none) but must NEVER
// report disjointness for overlapping RPLs.

var universeElems = []Elem{N("A"), N("B"), Idx(0), Idx(1)}

// expand returns the set of fully specified RPL strings denoted by pattern,
// with * limited to sequences of length <= starMax.
func expand(p RPL, starMax int) map[string]bool {
	out := map[string]bool{}
	var rec func(i int, acc []Elem)
	rec = func(i int, acc []Elem) {
		if i == p.Len() {
			out[New(acc...).String()] = true
			return
		}
		e := p.Elem(i)
		switch e.Kind {
		case Star:
			var seqs func(k int, acc []Elem)
			seqs = func(k int, acc []Elem) {
				rec(i+1, acc)
				if k == 0 {
					return
				}
				for _, u := range universeElems {
					seqs(k-1, append(acc[:len(acc):len(acc)], u))
				}
			}
			seqs(starMax, acc)
		case AnyIndex:
			rec(i+1, append(acc[:len(acc):len(acc)], Idx(0)))
			rec(i+1, append(acc[:len(acc):len(acc)], Idx(1)))
		default:
			rec(i+1, append(acc[:len(acc):len(acc)], e))
		}
	}
	rec(0, nil)
	return out
}

func randRPL(r *rand.Rand) RPL {
	n := r.Intn(4)
	elems := make([]Elem, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			elems = append(elems, Any)
		case 1:
			elems = append(elems, AnyIdx)
		default:
			elems = append(elems, universeElems[r.Intn(len(universeElems))])
		}
	}
	return New(elems...)
}

func TestDisjointSoundOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		a, b := randRPL(r), randRPL(r)
		da, db := expand(a, 2), expand(b, 2)
		overlap := false
		for k := range da {
			if db[k] {
				overlap = true
				break
			}
		}
		got := a.Disjoint(b)
		if got && overlap {
			t.Fatalf("Disjoint(%s, %s) = true but denotations overlap", a, b)
		}
		// Completeness on wildcard-free pairs: must not be conservative.
		if a.FullySpecified() && b.FullySpecified() && !overlap && !got {
			t.Fatalf("Disjoint(%s, %s) = false but fully-specified and distinct", a, b)
		}
	}
}

// patternRegexp builds an independent oracle for "fully specified RPL is
// denoted by pattern", encoding each element as "/name" or "#idx" and
// translating * to ".*" and [?] to an index token.
func patternRegexp(p RPL) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for i := 0; i < p.Len(); i++ {
		switch e := p.Elem(i); e.Kind {
		case Star:
			b.WriteString(".*")
		case AnyIndex:
			b.WriteString("#-?[0-9]+;")
		case Name:
			b.WriteString(regexp.QuoteMeta("/" + e.Name + ";"))
		case Index:
			b.WriteString(regexp.QuoteMeta("#" + strconv.Itoa(e.Index) + ";"))
		}
	}
	b.WriteString("$")
	return regexp.MustCompile(b.String())
}

func encodeFull(s string) string {
	// s is a String() form like Root:A:[3]; encode to /A;#3;
	var b strings.Builder
	for _, part := range strings.Split(s, ":")[1:] {
		if strings.HasPrefix(part, "[") {
			b.WriteString("#" + strings.Trim(part, "[]") + ";")
		} else {
			b.WriteString("/" + part + ";")
		}
	}
	return b.String()
}

func TestIncludedSoundOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		a, b := randRPL(r), randRPL(r)
		got := a.Included(b)
		if !got {
			continue // Included may be conservative in the false direction
		}
		re := patternRegexp(b)
		for k := range expand(a, 2) {
			if !re.MatchString(encodeFull(k)) {
				t.Fatalf("Included(%s, %s) = true but %s not denoted by %s", a, b, k, b)
			}
		}
	}
}

func TestIncludedImpliesNotDisjointWithSelf(t *testing.T) {
	// If a ⊆ b and a denotes at least one region, a and b overlap.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		a, b := randRPL(r), randRPL(r)
		if a.Included(b) && a.Disjoint(b) {
			t.Fatalf("a=%s ⊆ b=%s yet reported disjoint", a, b)
		}
	}
}

func TestQuickProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randRPL(r))
			}
		},
	}
	// Disjointness is symmetric.
	if err := quick.Check(func(a, b RPL) bool {
		return a.Disjoint(b) == b.Disjoint(a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Inclusion is reflexive.
	if err := quick.Check(func(a, b RPL) bool {
		return a.Included(a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Everything is included in Root:* and under Root.
	if err := quick.Check(func(a, b RPL) bool {
		return a.Included(RootStar) && a.Under(Root)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Inclusion is transitive.
	if err := quick.Check(func(a, b, c RPL) bool {
		if a.Included(b) && b.Included(c) {
			return a.Included(c)
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
	// If a ⊆ b, anything disjoint from b is disjoint from a... Disjoint is
	// conservative, so only check the sound direction: overlap(a,c) implies
	// overlap(b,c) whenever the oracle-backed Included holds and c is
	// wildcard-free (where Disjoint is exact for fully specified pairs
	// against patterns in our implementation's left/right scan? — keep to
	// symmetric+reflexive laws; deeper laws are covered by the oracle tests
	// above).
}

func TestCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := randRPL(r), randRPL(r), randRPL(r)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare antisymmetry failed: %s vs %s", a, b)
		}
		if a.Compare(b) == 0 && !a.Equal(b) {
			t.Fatalf("Compare==0 but not Equal: %s vs %s", a, b)
		}
		if a.Compare(b) < 0 && b.Compare(c) < 0 && a.Compare(c) >= 0 {
			t.Fatalf("Compare transitivity failed: %s %s %s", a, b, c)
		}
	}
}

func TestAppendAndAccessors(t *testing.T) {
	r := mp("A:B")
	s := r.Append(Idx(3), Any)
	if s.String() != "Root:A:B:[3]:*" {
		t.Fatalf("Append: got %s", s)
	}
	if r.String() != "Root:A:B" {
		t.Fatalf("Append mutated receiver: %s", r)
	}
	if s.Len() != 4 || s.Elem(2) != Idx(3) {
		t.Fatalf("accessors wrong: %v", s)
	}
	es := s.Elems()
	es[0] = N("Z")
	if s.String() != "Root:A:B:[3]:*" {
		t.Fatalf("Elems not a copy")
	}
}
