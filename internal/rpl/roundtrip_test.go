package rpl

import (
	"math/rand"
	"testing"
)

// The element alphabet for the round-trip property: every kind the
// surface syntax can denote, including the wildcards schedfuzz renders
// ([?] via index erasure, a trailing * via tail truncation), negative
// and multi-digit indices, parameters, and the name "Root" appearing as
// an ordinary interior element.
var roundTripAlphabet = []Elem{
	N("A"), N("B"), N("Shard"), N("Session"), N("Root"), N("x9"),
	Idx(0), Idx(3), Idx(41), Idx(-7),
	AnyIdx, Any,
	P("p"), P("i0"),
}

func checkRoundTrip(t *testing.T, r RPL) {
	t.Helper()
	s := r.String()
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v (from %d-elem RPL)", s, err, r.Len())
	}
	if !back.Equal(r) {
		t.Fatalf("Parse(String) round trip: %q -> %q", s, back)
	}
	if again := back.String(); again != s {
		t.Fatalf("String not a fixed point: %q -> %q", s, again)
	}
}

// TestRPLRoundTripExhaustive covers every RPL up to three elements over
// the full alphabet (1 + 14 + 14² + 14³ forms).
func TestRPLRoundTripExhaustive(t *testing.T) {
	al := roundTripAlphabet
	checkRoundTrip(t, Root)
	for _, a := range al {
		checkRoundTrip(t, New(a))
		for _, b := range al {
			checkRoundTrip(t, New(a, b))
			for _, c := range al {
				checkRoundTrip(t, New(a, b, c))
			}
		}
	}
}

// TestRPLRoundTripRandom drives deeper paths (up to 8 elements) from a
// pinned seed.
func TestRPLRoundTripRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rnd.Intn(9)
		elems := make([]Elem, n)
		for j := range elems {
			e := roundTripAlphabet[rnd.Intn(len(roundTripAlphabet))]
			if e.Kind == Index {
				e.Index = rnd.Intn(2001) - 1000
			}
			elems[j] = e
		}
		checkRoundTrip(t, New(elems...))
	}
}

func TestRPLParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"A::B", "A:", ":A", "A:[", "A:[]", "A:[x y]", "A:B*", "A:[3]]", "A:?",
	} {
		if r, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %q, want error", s, r)
		}
	}
}

func TestRPLParseAcceptsSurfaceForms(t *testing.T) {
	cases := map[string]RPL{
		"Root":               Root,
		"":                   Root,
		"Root:A:[3]":         New(N("A"), Idx(3)),
		"A:[3]":              New(N("A"), Idx(3)), // Root prefix optional
		"Shard:*":            New(N("Shard"), Any),
		"A:[?]:[p]":          New(N("A"), AnyIdx, P("p")),
		" Root : A : [ -2 ]": New(N("A"), Idx(-2)), // interior whitespace
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %q, want %q", s, got, want)
		}
	}
}
