module twe

go 1.22
