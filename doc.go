// Package twe is a Go reproduction of "The Tasks with Effects Model for
// Safe Concurrency" (Heumann & Adve, PPoPP 2013, with the dissertation's
// elaborations: the covering-effect analysis, the PACT 2015 tree-based
// scheduler, and the dynamic-effects extension).
//
// The library lives under internal/: rpl and effect implement the
// hierarchical region/effect algebra; compound and dataflow the
// covering-effect analysis; lang a small checked task language (TWEL);
// semantics the executable formal semantics; core the task runtime with
// naive (single-queue) and tree (scalable) effect-aware schedulers;
// dyneff the dynamic-effects extension; apps/* the evaluation programs;
// and bench the figure-regeneration harness. See README.md, DESIGN.md and
// EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate every evaluation figure at
// CI-friendly sizes; cmd/twe-bench prints the full paper-style tables.
package twe
