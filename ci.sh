#!/bin/sh
# CI gate: vet, full build, race-enabled tests, and a pinned-seed
# differential fuzz smoke. Run via `make check` or directly.
set -eu

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test (tier 1) =='
go test ./...

echo '== go test -race internal =='
go test -race ./internal/...

# Differential fuzz smoke: pinned seed range so the run is reproducible and
# bounded (~30s incl. build); any divergence exits non-zero with a replay
# command line.
echo '== twe-fuzz smoke =='
go run ./cmd/twe-fuzz -seed 0 -n 300 -schedules 2 -timeout 20s

echo 'ci: OK'
