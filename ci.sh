#!/bin/sh
# CI gate: vet, full build, race-enabled tests, and a pinned-seed
# differential fuzz smoke. Run via `make check` or directly.
set -eu

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test (tier 1) =='
go test ./...

echo '== go test -race internal =='
go test -race ./internal/...

# Differential fuzz smoke: pinned seed range so the run is reproducible and
# bounded (~30s incl. build); any divergence exits non-zero with a replay
# command line.
echo '== twe-fuzz smoke =='
go run ./cmd/twe-fuzz -seed 0 -n 300 -schedules 2 -timeout 20s

# Fault-injection smoke (DESIGN.md §10): the same differential harness
# with panics/cancels/deadlines injected into a seed-chosen task subset —
# surviving-store equality, failure classes, oracle, quiescence.
echo '== twe-fuzz -faults smoke =='
go run ./cmd/twe-fuzz -faults -seed 0 -n 120 -schedules 1 -timeout 20s

# Batched-admission smoke (DESIGN.md §12): the same generated programs
# with launches grouped into SubmitBatch calls at seed-derived
# boundaries — identical groups under both schedulers, so store
# equality, the isolation oracle, and quiescence check the batched
# insert path differentially.
echo '== twe-fuzz -batch smoke =='
go run ./cmd/twe-fuzz -batch -seed 0 -n 120 -schedules 1 -timeout 20s

# Observability smoke (DESIGN.md §7): trace two workloads under the
# isolation oracle and validate the Chrome trace / Prometheus outputs
# with twe-trace's built-in structural checkers — no external tools.
echo '== obs smoke =='
go build -o /tmp/twe-trace-ci ./cmd/twe-trace
/tmp/twe-trace-ci -app kmeans -sched tree -par 4 -isolcheck \
	-trace /tmp/twe-ci-kmeans.json -metrics /tmp/twe-ci-kmeans.prom
/tmp/twe-trace-ci -app server -sched naive -par 4 -isolcheck \
	-trace /tmp/twe-ci-server.json -metrics /tmp/twe-ci-server.prom
/tmp/twe-trace-ci -faults \
	-trace /tmp/twe-ci-faults.json -metrics /tmp/twe-ci-faults.prom
/tmp/twe-trace-ci -check /tmp/twe-ci-kmeans.json
/tmp/twe-trace-ci -check /tmp/twe-ci-server.json
/tmp/twe-trace-ci -check /tmp/twe-ci-faults.json
/tmp/twe-trace-ci -checkmetrics /tmp/twe-ci-kmeans.prom
/tmp/twe-trace-ci -checkmetrics /tmp/twe-ci-server.prom
/tmp/twe-trace-ci -checkmetrics /tmp/twe-ci-faults.prom

# Service-layer smoke (DESIGN.md §11): three twe-serve daemons on
# ephemeral ports driven by the closed-loop load generator — correctness
# under the isolation oracle (writes BENCH_serve.json), forced overload
# with -expect-shed, and fault-mode effect release. Each phase asserts a
# clean SIGTERM drain audit.
echo '== serve smoke =='
BENCH_OUT=/tmp/BENCH_serve.json ./scripts/serve-smoke.sh

# Batched-admission wire smoke (DESIGN.md §12): twe-serve daemons driven
# by twe-load -batch 4 so every data op arrives inside a batch frame and
# enters the runtime through SubmitBatch — once clean, once under
# -faults (half-sent batches must release every admitted effect).
echo '== batch smoke =='
./scripts/batch-smoke.sh

# Wire-protocol v2 smoke (DESIGN.md §13): the codec battery under -race
# (golden frames, intern table, cross-codec parity, pinned fuzz-corpus
# replay), live negotiation with pure-v2 and mixed v1/v2 clients, and
# the same-seed v1-vs-v2 bench pair (writes BENCH_serve_v2.json).
echo '== proto smoke =='
BENCH_V2_OUT=/tmp/BENCH_serve_v2.json ./scripts/proto-smoke.sh

# Request-tracing smoke (DESIGN.md §14): the tracing/attribution battery
# under -race (contention tree, span goldens, options-frame negotiation,
# zero-alloc gates), a live traced daemon whose /debug/twe must
# attribute nonzero stall to the shared Shard subtree, pprof/expvar
# probes, Chrome-trace req-span validation, and the same-seed
# tracing-off-vs-on overhead pair (writes BENCH_prof.json).
echo '== prof smoke =='
BENCH_PROF_OUT=/tmp/BENCH_prof.json ./scripts/prof-smoke.sh

# Executable admission-spec smoke (DESIGN.md §15): exhaustively
# model-check every preset configuration, prove the seeded mutations
# are caught with counterexamples, run the pinned-seed differential
# fuzz with the trace-refinement oracle attached, and round-trip a
# real workload's event-log dump through twe-spec -refine.
echo '== spec smoke =='
./scripts/spec-smoke.sh

# Effect-sharded cluster smoke (DESIGN.md §16): exhaustive cross-shard
# two-phase model checking, a router fronting two shard daemons (2pc and
# serial cross lanes, fault-mode release, fleet accounting identities,
# SIGTERM drain audits fleet-wide), and the single-vs-two-shard
# scale-out bench pair (writes BENCH_cluster.json, ratio gated >= 1.7).
echo '== cluster smoke =='
BENCH_CLUSTER_OUT=/tmp/BENCH_cluster.json ./scripts/cluster-smoke.sh

# Lock-free admission smoke (DESIGN.md §17): fast-path stress batteries
# under -race, exhaustive epoch-snapshot model exploration with every
# seeded protocol break caught, race-built naive/tree/tree-lockfree
# differential fuzz over the fast/slow boundary, and the >= 1.2x
# fast-path submission perf gate.
echo '== lockfree smoke =='
./scripts/lockfree-smoke.sh

# Perf snapshots of the in-process workloads via the -apps filter:
# BENCH_server.json plus BENCH_batch.json (batched vs per-task
# submission throughput; schemas in EXPERIMENTS.md).
echo '== twe-bench -json (server,batch) =='
go run ./cmd/twe-bench -json /tmp/twe-ci-bench -apps server,batch -threads 1,4 -reps 2

echo 'ci: OK'
