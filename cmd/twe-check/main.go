// Command twe-check is the TWEL static checker: the counterpart of the
// TWEJava compiler's effect checking (PPoPP 2013 §3.4.1, Ch. 4). It parses
// each given .twel file and verifies that
//
//   - every operation's effect is included in the current covering effect
//     at its program point, accounting for spawn/join effect transfer
//     (the covering-effect dataflow analysis);
//   - deterministic tasks use only spawn/join (§3.3.5);
//   - dynamic reference uses are preceded by additions to the task's
//     dynamic effect set (§7.2.6–7.2.7).
//
// Exit status 0 = all checks passed, 1 = errors found, 2 = usage/parse
// failure. With no arguments it checks the built-in increaseContrast demo
// (the paper's Fig. 3.2).
package main

import (
	"flag"
	"fmt"
	"os"

	"twe/internal/lang"
)

const demo = `// The paper's Fig. 3.2 image-contrast example, in TWEL.
region Top, Bottom;
var topSum in Top;
var bottomSum in Bottom;

task increaseTop() effect writes Top {
    topSum = topSum + 1;
}

task increaseContrast() effect writes Top, Bottom {
    let f = spawn increaseTop();       // transfers writes Top away
    bottomSum = bottomSum + 1;         // still covered
    join f;                            // transfers writes Top back
    topSum = topSum + 1;               // covered again
}
`

func main() {
	quiet := flag.Bool("q", false, "suppress warnings")
	infer := flag.Bool("infer", false, "print inferred effect summaries and audit the declared ones")
	flag.Parse()

	type unit struct {
		name string
		src  string
	}
	var units []unit
	if flag.NArg() == 0 {
		fmt.Println("twe-check: no files given; checking the built-in Fig. 3.2 demo")
		units = append(units, unit{"<demo>", demo})
	}
	for _, f := range flag.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		units = append(units, unit{f, string(b)})
	}

	bad := false
	for _, u := range units {
		prog, err := lang.Parse(u.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", u.name, err)
			os.Exit(2)
		}
		res := lang.Check(prog)
		for _, e := range res.Errors {
			fmt.Printf("%s: %v\n", u.name, e)
		}
		if !*quiet {
			for _, w := range res.Warnings {
				fmt.Printf("%s: %v\n", u.name, w)
			}
		}
		if !res.OK() {
			bad = true
		} else {
			fmt.Printf("%s: OK (%d tasks, %d warnings)\n", u.name, len(prog.Tasks), len(res.Warnings))
		}
		if *infer {
			summaries := lang.Infer(prog)
			for _, task := range prog.Tasks {
				fmt.Printf("%s: inferred %s: effect %v\n", u.name, task.Name, summaries[task.Name])
			}
			for _, f := range lang.Audit(prog) {
				fmt.Printf("%s: audit: task %q declaration misses inferred effects %v (inferred summary: %v)\n",
					u.name, f.Task, f.Missing, f.Inferred)
				bad = true
			}
		}
	}
	if bad {
		os.Exit(1)
	}
}
