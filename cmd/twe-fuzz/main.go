// Command twe-fuzz is the deterministic schedule-fuzzing and
// differential-replay harness for the TWE schedulers (internal/schedfuzz).
//
// Fuzz mode generates one random-but-reproducible TWEL program per seed and
// runs it differentially: an analytic expected store, the formal-semantics
// interpreter, and the naive and tree schedulers across several perturbed
// schedules, all under the isolation oracle. Any divergence prints as a
// replayable (seed, schedule, scheduler) triple and the command exits 1.
//
// Fault mode (-faults) injects deterministic failures — panicking bodies,
// cancel-at-launch, and near-immediate deadlines — into a seed-chosen
// subset of each program's launched tasks, then checks that both
// schedulers agree on the surviving store, that every faulted future
// reports the right failure class, that the isolation oracle stays quiet,
// and that the schedulers quiesce (no leaked effects on any exit path).
//
// Batch mode (-batch) groups each program's launches into SubmitBatch
// calls at seed-derived boundaries (identical groups under every
// scheduler and schedule) and runs the same differential store/isolation/
// quiescence oracle against the batched admission path (DESIGN.md §12).
//
// Refinement mode (-refine) additionally records an obs event log on
// every runtime execution and replays it against the executable admission
// model (internal/spec): a history the model rejects fails the run even
// when stores match and the isolation oracle stayed quiet.
//
// Usage:
//
//	twe-fuzz [-seed N] [-n COUNT] [-schedules K] [-par P] [-timeout D]
//	         [-schedule M] [-sched naive|tree|tree-lockfree] [-faults] [-batch] [-refine]
//	         [-shrink] [-budget B] [-dump] [-v]
//
// Fuzzing a range:       twe-fuzz -seed 0 -n 1000
// Fault injection:       twe-fuzz -faults -seed 0 -n 200
// Batched admission:     twe-fuzz -batch -seed 0 -n 200
// Refinement check:      twe-fuzz -refine -seed 0 -n 200
// Replaying a failure:   twe-fuzz -seed 42 -schedule 3 -sched tree
// Inspecting a program:  twe-fuzz -seed 42 -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"twe/internal/lang"
	"twe/internal/schedfuzz"
)

func main() {
	seed := flag.Int64("seed", 0, "first seed (the program generator is a pure function of the seed)")
	n := flag.Int("n", 100, "number of seeds to fuzz (ignored when -schedule or -sched is given)")
	schedules := flag.Int("schedules", 3, "perturbed schedules per scheduler, in addition to the unperturbed schedule 0")
	par := flag.Int("par", 4, "runtime worker parallelism")
	timeout := flag.Duration("timeout", 30*time.Second, "per-execution timeout before reporting a suspected deadlock")
	schedule := flag.Int("schedule", -1, "replay only this schedule index for -seed (-1 = sweep all)")
	sched := flag.String("sched", "", "replay only this scheduler: "+strings.Join(schedfuzz.Schedulers(), ", ")+" (empty = all)")
	shrink := flag.Bool("shrink", false, "on failure, greedily shrink the failing program and print the minimized source")
	budget := flag.Int("budget", 200, "shrink budget: max differential re-runs while minimizing")
	dump := flag.Bool("dump", false, "print the generated TWEL program for -seed and exit")
	faults := flag.Bool("faults", false, "inject deterministic faults (panic/cancel/deadline) into launched tasks")
	batch := flag.Bool("batch", false, "group launches into SubmitBatch calls at seed-derived boundaries")
	refine := flag.Bool("refine", false, "record an event log per execution and replay it against the admission model (internal/spec)")
	verbose := flag.Bool("v", false, "print per-seed progress")
	flag.Parse()

	if *sched != "" && !slices.Contains(schedfuzz.Schedulers(), *sched) {
		fmt.Fprintf(os.Stderr, "twe-fuzz: unknown scheduler %q (want %s)\n",
			*sched, strings.Join(schedfuzz.Schedulers(), ", "))
		os.Exit(2)
	}
	if *faults && *batch {
		fmt.Fprintln(os.Stderr, "twe-fuzz: -faults and -batch are separate modes; pick one")
		os.Exit(2)
	}

	cfg := schedfuzz.Config{Schedules: *schedules, Parallelism: *par, Timeout: *timeout, Refine: *refine}

	if *dump {
		spec := schedfuzz.Generate(*seed)
		prog, err := schedfuzz.Render(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twe-fuzz: seed %d: %v\n", *seed, err)
			os.Exit(1)
		}
		fmt.Printf("// seed %d: %d tasks, %d instances\n%s", *seed, len(spec.Tasks), spec.Instances(), lang.Format(prog))
		return
	}

	// Replay mode: a single seed, optionally pinned to one scheduler and
	// one schedule index.
	if *schedule >= 0 || *sched != "" {
		var fails []*schedfuzz.Failure
		switch {
		case *faults:
			fails = schedfuzz.ReplayFaults(*seed, *sched, *schedule, cfg)
		case *batch:
			fails = schedfuzz.ReplayBatch(*seed, *sched, *schedule, cfg)
		default:
			fails = schedfuzz.Replay(*seed, *sched, *schedule, cfg)
		}
		report(fails, cfg, *shrink, *budget, *faults, *batch)
		if len(fails) > 0 {
			os.Exit(1)
		}
		fmt.Printf("seed %d: ok\n", *seed)
		return
	}

	start := time.Now()
	progress := func(s int64, fails []*schedfuzz.Failure) {
		if *verbose {
			status := "ok"
			if len(fails) > 0 {
				status = fmt.Sprintf("%d FAILURE(S)", len(fails))
			}
			fmt.Printf("seed %d: %s\n", s, status)
		}
	}
	var rep *schedfuzz.Report
	mode := "fuzzed"
	switch {
	case *faults:
		rep = schedfuzz.FuzzFaults(*seed, *n, cfg, progress)
		mode = "fault-injected"
	case *batch:
		rep = schedfuzz.FuzzBatch(*seed, *n, cfg, progress)
		mode = "batch-admitted"
	default:
		rep = schedfuzz.Fuzz(*seed, *n, cfg, progress)
	}
	fmt.Printf("%s %d programs (%d task instances) in %v: %d failure(s)\n",
		mode, rep.Programs, rep.Instances, time.Since(start).Round(time.Millisecond), len(rep.Failures))
	if *batch {
		fmt.Printf("flushed %d multi-task SubmitBatch group(s)\n", rep.BatchGroups)
	}
	report(rep.Failures, cfg, *shrink, *budget, *faults, *batch)
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

// report prints each failure with its replay command line, shrinking the
// first failing seed when requested (shrinking operates on the un-faulted,
// per-task-submitted program, so it is skipped in fault and batch modes).
func report(fails []*schedfuzz.Failure, cfg schedfuzz.Config, shrink bool, budget int, faults, batch bool) {
	mode := ""
	switch {
	case faults:
		mode = "-faults "
	case batch:
		mode = "-batch "
	}
	shrunkSeeds := map[int64]bool{}
	for _, f := range fails {
		fmt.Printf("FAIL %v\n", f)
		fmt.Printf("     replay: twe-fuzz %s-seed %d -schedule %d -sched %s\n", mode, f.Seed, f.Schedule, f.Scheduler)
		if !shrink || faults || batch || shrunkSeeds[f.Seed] || f.Scheduler == "gen" || f.Scheduler == "interp" {
			continue
		}
		shrunkSeeds[f.Seed] = true
		min := schedfuzz.Shrink(schedfuzz.Generate(f.Seed), cfg, budget)
		if prog, err := schedfuzz.Render(min); err == nil {
			fmt.Printf("     shrunk program (still failing):\n%s", lang.Format(prog))
		}
	}
}
