// Command twe-load is the deterministic closed-loop load generator for
// twe-serve. Every connection's request plan (key/effect mix, conflict
// ratio, scans, adds) is derived from -seed, responses are validated
// in order against a per-connection oracle, and after the drive phase a
// validation connection sweeps the whole key space against the exact
// final-state oracle and cross-checks the server's served/shed/busy
// accounting. -json writes a BENCH_serve.json perf snapshot
// (EXPERIMENTS.md documents the schema).
//
// -faults exercises the effect-release paths: a third of the
// connections abruptly disconnect mid-run and another third chase puts
// with wire cancels; the run then asserts the server goes fully idle
// (no leaked in-flight requests). -expect-shed makes the run fail
// unless overload was actually observed (forced-overload smoke).
// -scrape GETs a Prometheus endpoint and asserts the serve families are
// present. -trace-ids stamps every request with a trace id (DESIGN.md
// §14); -debug-url GETs the server's /debug/twe snapshot after the run
// and -expect-contention makes the run fail unless stall time was
// attributed and the hottest effect subtree matches the given regexp.
//
// Cluster mode: point -addr at a twe-router and -cluster-url at its
// control plane. The same per-connection oracles and the exact sweep
// apply unchanged (the router answers stats from its own client-facing
// counters), and after the run the fleet snapshot is checked against
// the routing accounting identities (DESIGN.md §16). With -json the
// report is written as BENCH_cluster.json instead, including per-member
// rps/p99 and — when -baseline-rps is given — the scale-out ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"twe/internal/cluster"
	"twe/internal/svc"
)

var (
	addrFlag     = flag.String("addr", "", "twe-serve address")
	addrFileFlag = flag.String("addr-file", "", "read the server address from this file (polls until it appears)")
	connsFlag    = flag.Int("conns", 8, "concurrent connections")
	requestsFlag = flag.Int("requests", 100, "requests per connection")
	pipelineFlag = flag.Int("pipeline", 4, "closed-loop window per connection")
	modeFlag     = flag.String("mode", "closed", "closed (windowed) or open (burst)")
	seedFlag     = flag.Int64("seed", 1, "plan seed")
	conflictFlag = flag.Float64("conflict", 0.25, "probability an op hits the shared key range")
	scanFlag     = flag.Int("scan-every", 0, "every n-th request is a full scan (0 = none)")
	addFracFlag  = flag.Float64("add-frac", 0.15, "fraction of ops that are accumulator adds (<0 disables)")
	faultsFlag   = flag.Bool("faults", false, "mid-run disconnects + wire cancels; assert effects are released")
	batchFlag    = flag.Int("batch", 0, "group up to N consecutive data ops into one batch frame (0/1 = per-request frames)")
	protoFlag    = flag.String("proto", "v1", "wire protocol: v1 (JSON), v2 (binary + effect interning), or mixed")
	jsonFlag     = flag.String("json", "", "write BENCH_serve.json here")
	expectFlag   = flag.Bool("expect-shed", false, "fail unless shedding/backpressure was observed")
	scrapeFlag   = flag.String("scrape", "", "GET this Prometheus URL and assert the serve metric families exist")
	traceIDFlag  = flag.Bool("trace-ids", false, "stamp every request with a per-connection trace id")
	debugFlag    = flag.String("debug-url", "", "GET this /debug/twe URL after the run and print the snapshot")
	contendFlag  = flag.String("expect-contention", "", "with -debug-url: fail unless total stall > 0 and the top effect subtree matches this regexp")
	clusterFlag  = flag.String("cluster-url", "", "twe-router control-plane base URL; fetch the fleet snapshot after the run and check the accounting identities")
	baseRPSFlag  = flag.Float64("baseline-rps", 0, "single-node baseline throughput; with -cluster-url -json, records the scale-out ratio in BENCH_cluster.json")
)

func resolveAddr() (string, error) {
	if *addrFlag != "" {
		return *addrFlag, nil
	}
	if *addrFileFlag == "" {
		return "", fmt.Errorf("need -addr or -addr-file")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(*addrFileFlag)
		if err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("address file %s did not appear", *addrFileFlag)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func scrape(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return fmt.Errorf("empty metrics body from %s", url)
	}
	for _, family := range []string{
		"twe_serve_requests_total",
		"twe_serve_request_latency_seconds_count",
		"twe_admission_latency_seconds_count",
		"twe_tasks_submitted_total",
	} {
		if !strings.Contains(string(body), family) {
			return fmt.Errorf("metrics from %s missing family %s", url, family)
		}
	}
	fmt.Printf("twe-load: scraped %s: %d bytes, serve+runtime families present\n", url, len(body))
	return nil
}

// checkDebug GETs the /debug/twe snapshot, prints the contention
// headline, and (when expectRE is non-empty) asserts that stall time was
// attributed and the hottest effect subtree matches the pattern. The
// assertion runs in-process so smoke scripts need no jq.
func checkDebug(url, expectRE string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap svc.DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}
	top := "-"
	if len(snap.Contention.Top) > 0 {
		top = fmt.Sprintf("%s (%v over %d stalls)", snap.Contention.Top[0].Path,
			time.Duration(snap.Contention.Top[0].StallNS), snap.Contention.Top[0].Count)
	}
	fmt.Printf("twe-load: debug %s: req_trace=%v conns=%d stall=%v/%d top=%s trace-events=%d\n",
		url, snap.ReqTrace, snap.Conns.Live, time.Duration(snap.Contention.TotalStallNS),
		snap.Contention.Observations, top, snap.TraceEvents)
	if expectRE == "" {
		return nil
	}
	re, err := regexp.Compile(expectRE)
	if err != nil {
		return fmt.Errorf("-expect-contention: %w", err)
	}
	if snap.Contention.TotalStallNS <= 0 || snap.Contention.Observations <= 0 {
		return fmt.Errorf("expected contention but snapshot shows stall=%dns over %d observations",
			snap.Contention.TotalStallNS, snap.Contention.Observations)
	}
	if len(snap.Contention.Top) == 0 || !re.MatchString(snap.Contention.Top[0].Path) {
		return fmt.Errorf("top contended subtree %q does not match -expect-contention %q", top, expectRE)
	}
	return nil
}

func main() {
	flag.Parse()

	if *scrapeFlag != "" && *addrFlag == "" && *addrFileFlag == "" {
		if err := scrape(*scrapeFlag); err != nil {
			fmt.Fprintln(os.Stderr, "twe-load:", err)
			os.Exit(1)
		}
		return
	}

	addr, err := resolveAddr()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twe-load:", err)
		os.Exit(2)
	}
	cfg := svc.LoadConfig{
		Addr:      addr,
		Conns:     *connsFlag,
		Requests:  *requestsFlag,
		Pipeline:  *pipelineFlag,
		Mode:      *modeFlag,
		Seed:      *seedFlag,
		Conflict:  *conflictFlag,
		ScanEvery: *scanFlag,
		AddFrac:   *addFracFlag,
		Faults:    *faultsFlag,
		Batch:     *batchFlag,
		Proto:     *protoFlag,
		TraceIDs:  *traceIDFlag,
	}
	rep, err := svc.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twe-load:", err)
		os.Exit(1)
	}

	fmt.Printf("twe-load: %s sched=%s proto=%s conns=%d reqs/conn=%d pipeline=%d batch=%d seed=%d conflict=%.2f faults=%v\n",
		addr, rep.Sched, rep.Proto, rep.Conns, rep.RequestsPerConn, cfg.Pipeline, cfg.Batch, cfg.Seed, cfg.Conflict, cfg.Faults)
	fmt.Printf("twe-load: sent=%d served=%d shed=%d busy=%d cancelled=%d acks=%d killed=%d elapsed=%v throughput=%.0f/s\n",
		rep.Sent, rep.Served, rep.Shed, rep.Busy, rep.Cancelled, rep.CancelAcks, rep.Killed,
		time.Duration(rep.ElapsedNS), rep.ThroughputRPS)
	fmt.Printf("twe-load: latency p50=%v p90=%v p99=%v max=%v shed-rate=%.3f oracle-checks=%d\n",
		time.Duration(rep.P50NS), time.Duration(rep.P90NS), time.Duration(rep.P99NS),
		time.Duration(rep.MaxNS), rep.ShedRate(), rep.Checks)
	if st := rep.ServerStats; st != nil {
		fmt.Printf("twe-load: server requests=%d served=%d shed=%d busy=%d cancelled=%d disconnects=%d effcache=%d/%d inflight=%d batches=%d(%d ops) conns=v1:%d/v2:%d effregs=%d\n",
			st.Requests, st.Served, st.Shed, st.Busy, st.Cancelled, st.Disconnects,
			st.EffHits, st.EffHits+st.EffMisses, st.Inflight, st.Batches, st.BatchedOps,
			st.V1Conns, st.V2Conns, st.EffRegs)
	}

	code := 0
	if n := len(rep.Violations); n > 0 {
		fmt.Fprintf(os.Stderr, "twe-load: %d ORACLE VIOLATION(S):\n", n)
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "  ", v)
		}
		code = 1
	} else {
		fmt.Println("twe-load: oracle clean")
	}
	if *expectFlag && rep.Shed+rep.Busy == 0 {
		fmt.Fprintln(os.Stderr, "twe-load: -expect-shed: no shedding or backpressure observed")
		code = 1
	}
	var fleet *cluster.Snapshot
	if *clusterFlag != "" {
		snap, err := cluster.FetchSnapshot(*clusterFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-load: cluster:", err)
			code = 1
		} else {
			fleet = snap
			var fwd, prep, srv int64
			for _, m := range snap.Members {
				fwd += m.Fwd
				prep += m.Prep
				srv += m.Srv
			}
			fmt.Printf("twe-load: fleet %s: members=%d cross-lane=%s fwd=%d prep=%d member-served=%d\n",
				*clusterFlag, len(snap.Members), snap.CrossLane, fwd, prep, srv)
			if probs := cluster.FleetCheck(snap); len(probs) > 0 {
				fmt.Fprintf(os.Stderr, "twe-load: %d FLEET ACCOUNTING VIOLATION(S):\n", len(probs))
				for _, p := range probs {
					fmt.Fprintln(os.Stderr, "  ", p)
				}
				code = 1
			} else {
				fmt.Println("twe-load: fleet accounting clean")
			}
		}
	}
	if *jsonFlag != "" {
		var err error
		if fleet != nil {
			err = cluster.BuildBench(rep, fleet, cfg, *baseRPSFlag).WriteBench(*jsonFlag)
		} else {
			err = rep.WriteBench(*jsonFlag, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-load: bench:", err)
			code = 1
		} else {
			fmt.Printf("twe-load: wrote %s\n", *jsonFlag)
		}
	}
	if *scrapeFlag != "" {
		if err := scrape(*scrapeFlag); err != nil {
			fmt.Fprintln(os.Stderr, "twe-load:", err)
			code = 1
		}
	}
	if *debugFlag != "" {
		if err := checkDebug(*debugFlag, *contendFlag); err != nil {
			fmt.Fprintln(os.Stderr, "twe-load:", err)
			code = 1
		}
	}
	os.Exit(code)
}
