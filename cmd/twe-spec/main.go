// Command twe-spec drives the executable admission specification
// (internal/spec, DESIGN.md §15): an explicit-state model checker over
// small closed configurations of the TWE admission contract, a TLA+
// exporter for offline TLC runs, and a trace-refinement oracle that
// validates obs event-log dumps from live runs.
//
// Explore mode enumerates every interleaving of a preset configuration
// (≤4 tasks × ≤3 effect regions) breadth-first, checking the invariant
// catalog (I1..I6 plus deadlock) in every reachable state; violations
// print a shortest counterexample trace. Mutations seed known contract
// breaks to prove the checker catches them.
//
// Refine mode replays a JSONL event log — written by `twe-trace
// -eventlog`, `twe-serve -eventlog`, or obs.WriteEventLog — as a
// candidate behavior the model must accept.
//
// Cluster mode (-cluster) switches to the cross-shard two-phase model
// (DESIGN.md §16): coordinator rounds acquiring prepared holds member
// by member, with its own invariant catalog (C1..C4 plus deadlock) and
// its own mutation set.
//
// Epoch mode (-epoch) switches to the lock-free admission fast-path
// model (DESIGN.md §17): epoch-snapshot descents racing bracketed slow
// inserts and waiter wakes, with invariants E1..E3 plus deadlock and
// mutations that break each safety clause of the protocol.
//
// Usage:
//
//	twe-spec -list
//	twe-spec -explore [-preset NAME] [-mutate M] [-expect-violation] [-max-states N]
//	twe-spec -explore -cluster [-preset NAME] [-mutate M] [-expect-violation]
//	twe-spec -explore -epoch [-preset NAME] [-mutate M] [-expect-violation]
//	twe-spec -tla [-preset NAME] [-mutate M] [-o FILE]
//	twe-spec -refine FILE [-partial]
//
// Mutations: skip-conflict, skip-register, leak-cancel; with -cluster:
// concurrent-rounds, unordered-prepare, early-commit, leak-abort; with
// -epoch: skip-epoch-recheck, skip-publish-check, unbracketed-wake.
//
// Exhaustive check of every preset:   twe-spec -explore
// Prove a mutation is caught:         twe-spec -explore -preset pair -mutate skip-conflict -expect-violation
// Check the cross-shard lane:         twe-spec -explore -cluster
// Prove prepare ordering matters:     twe-spec -explore -cluster -preset cross-conflict -mutate unordered-prepare -expect-violation
// Check the lock-free fast path:      twe-spec -explore -epoch
// Prove the epoch recheck matters:    twe-spec -explore -epoch -preset fast-vs-slow -mutate skip-epoch-recheck -expect-violation
// Export TLA+ for TLC:                twe-spec -tla -preset full -o full.tla
// Validate a live event dump:         twe-spec -refine events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twe/internal/spec"
)

func main() {
	list := flag.Bool("list", false, "list preset configurations and exit")
	explore := flag.Bool("explore", false, "exhaustively model-check preset configuration(s)")
	tla := flag.Bool("tla", false, "export the configuration as a TLA+ module")
	refine := flag.String("refine", "", "replay the JSONL event-log FILE against the admission model")
	cluster := flag.Bool("cluster", false, "model-check the cross-shard two-phase lane instead of single-node admission")
	epoch := flag.Bool("epoch", false, "model-check the lock-free admission fast path instead of single-node admission")
	preset := flag.String("preset", "", "preset name (empty = all presets, for -explore)")
	mutate := flag.String("mutate", "", "seed a contract break: skip-conflict, skip-register, or leak-cancel (with -cluster: concurrent-rounds, unordered-prepare, early-commit, leak-abort; with -epoch: skip-epoch-recheck, skip-publish-check, unbracketed-wake)")
	expectViolation := flag.Bool("expect-violation", false, "exit 0 only if exploration finds a violation (mutation testing)")
	maxStates := flag.Int("max-states", 0, "abort exploration beyond this many states (0 = default bound)")
	partial := flag.Bool("partial", false, "refine a non-quiescent (partial) dump: skip the end-of-log quiescence rule")
	out := flag.String("o", "", "output file for -tla (default stdout)")
	flag.Parse()

	switch {
	case *list:
		for _, c := range spec.Presets() {
			fmt.Printf("%-14s %d tasks  (cancel=%v, maxInflight=%d)\n",
				c.Name, len(c.Tasks), c.AllowCancel, c.MaxInflight)
		}
		for _, c := range spec.ClusterPresets() {
			fmt.Printf("%-14s %d ops over %d members  (abort=%v, cluster)\n",
				c.Name, len(c.Ops), c.Members, c.AllowAbort)
		}
		for _, c := range spec.EpochPresets() {
			fast := 0
			for _, t := range c.Tasks {
				if t.Eligible {
					fast++
				}
			}
			fmt.Printf("%-14s %d tasks, %d fast-eligible  (epoch)\n",
				c.Name, len(c.Tasks), fast)
		}
	case *refine != "":
		runRefine(*refine, *partial)
	case *tla:
		runTLA(*preset, *mutate, *out)
	case *explore && *cluster:
		runClusterExplore(*preset, *mutate, *expectViolation, *maxStates)
	case *explore && *epoch:
		runEpochExplore(*preset, *mutate, *expectViolation, *maxStates)
	case *explore:
		runExplore(*preset, *mutate, *expectViolation, *maxStates)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// clusterConfigs resolves -preset (empty = all) and applies -mutate for
// cluster mode.
func clusterConfigs(preset, mutate string) []*spec.ClusterConfig {
	var cfgs []*spec.ClusterConfig
	if preset == "" {
		cfgs = spec.ClusterPresets()
	} else {
		c := spec.ClusterPreset(preset)
		if c == nil {
			fmt.Fprintf(os.Stderr, "twe-spec: no cluster preset %q (have: %s)\n",
				preset, strings.Join(spec.ClusterPresetNames(), ", "))
			os.Exit(2)
		}
		cfgs = []*spec.ClusterConfig{c}
	}
	for _, c := range cfgs {
		switch mutate {
		case "":
		case "concurrent-rounds":
			c.Mutations.ConcurrentRounds = true
		case "unordered-prepare":
			c.Mutations.UnorderedPrepare = true
		case "early-commit":
			c.Mutations.EarlyCommit = true
		case "leak-abort":
			c.Mutations.LeakOnAbort = true
		default:
			fmt.Fprintf(os.Stderr, "twe-spec: unknown cluster mutation %q (want concurrent-rounds, unordered-prepare, early-commit, or leak-abort)\n", mutate)
			os.Exit(2)
		}
	}
	return cfgs
}

func runClusterExplore(preset, mutate string, expectViolation bool, maxStates int) {
	violations := 0
	for _, cfg := range clusterConfigs(preset, mutate) {
		res, err := spec.ClusterExplore(cfg, spec.ExploreOpts{MaxStates: maxStates})
		if err != nil {
			fmt.Fprintf(os.Stderr, "twe-spec: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %7d states %8d transitions  %v\n",
			cfg.Name, res.States, res.Transitions, res.Elapsed)
		if res.Violation != nil {
			violations++
			fmt.Printf("%s\n", res.Violation)
		}
	}
	if expectViolation {
		if violations == 0 {
			fmt.Fprintln(os.Stderr, "twe-spec: expected a violation, found none — the mutation went uncaught")
			os.Exit(1)
		}
		fmt.Printf("mutation caught (%d violation(s))\n", violations)
		return
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// epochConfigs resolves -preset (empty = all) and applies -mutate for
// epoch mode.
func epochConfigs(preset, mutate string) []*spec.EpochConfig {
	var cfgs []*spec.EpochConfig
	if preset == "" {
		cfgs = spec.EpochPresets()
	} else {
		c := spec.EpochPreset(preset)
		if c == nil {
			fmt.Fprintf(os.Stderr, "twe-spec: no epoch preset %q (have: %s)\n",
				preset, strings.Join(spec.EpochPresetNames(), ", "))
			os.Exit(2)
		}
		cfgs = []*spec.EpochConfig{c}
	}
	for _, c := range cfgs {
		switch mutate {
		case "":
		case "skip-epoch-recheck":
			c.Mutations.SkipEpochRecheck = true
		case "skip-publish-check":
			c.Mutations.SkipPublishCheck = true
		case "unbracketed-wake":
			c.Mutations.UnbrackedWake = true
		default:
			fmt.Fprintf(os.Stderr, "twe-spec: unknown epoch mutation %q (want skip-epoch-recheck, skip-publish-check, or unbracketed-wake)\n", mutate)
			os.Exit(2)
		}
	}
	return cfgs
}

func runEpochExplore(preset, mutate string, expectViolation bool, maxStates int) {
	violations := 0
	for _, cfg := range epochConfigs(preset, mutate) {
		res, err := spec.EpochExplore(cfg, spec.ExploreOpts{MaxStates: maxStates})
		if err != nil {
			fmt.Fprintf(os.Stderr, "twe-spec: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %7d states %8d transitions  %v\n",
			cfg.Name, res.States, res.Transitions, res.Elapsed)
		if res.Violation != nil {
			violations++
			fmt.Printf("%s\n", res.Violation)
		}
	}
	if expectViolation {
		if violations == 0 {
			fmt.Fprintln(os.Stderr, "twe-spec: expected a violation, found none — the mutation went uncaught")
			os.Exit(1)
		}
		fmt.Printf("mutation caught (%d violation(s))\n", violations)
		return
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// configs resolves -preset (empty = all) and applies -mutate.
func configs(preset, mutate string) []*spec.Config {
	var cfgs []*spec.Config
	if preset == "" {
		cfgs = spec.Presets()
	} else {
		c := spec.Preset(preset)
		if c == nil {
			fmt.Fprintf(os.Stderr, "twe-spec: no preset %q (have: %s)\n",
				preset, strings.Join(spec.PresetNames(), ", "))
			os.Exit(2)
		}
		cfgs = []*spec.Config{c}
	}
	for _, c := range cfgs {
		switch mutate {
		case "":
		case "skip-conflict":
			c.Mutations.SkipConflictCheck = true
		case "skip-register":
			c.Mutations.SkipRegisterBeforeEnable = true
		case "leak-cancel":
			c.Mutations.LeakOnCancel = true
		default:
			fmt.Fprintf(os.Stderr, "twe-spec: unknown mutation %q (want skip-conflict, skip-register, or leak-cancel)\n", mutate)
			os.Exit(2)
		}
	}
	return cfgs
}

func runExplore(preset, mutate string, expectViolation bool, maxStates int) {
	violations := 0
	for _, cfg := range configs(preset, mutate) {
		res, err := spec.Explore(cfg, spec.ExploreOpts{MaxStates: maxStates})
		if err != nil {
			fmt.Fprintf(os.Stderr, "twe-spec: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %7d states %8d transitions  %v\n",
			cfg.Name, res.States, res.Transitions, res.Elapsed)
		if res.Violation != nil {
			violations++
			fmt.Printf("%s\n", res.Violation)
		}
	}
	if expectViolation {
		if violations == 0 {
			fmt.Fprintln(os.Stderr, "twe-spec: expected a violation, found none — the mutation went uncaught")
			os.Exit(1)
		}
		fmt.Printf("mutation caught (%d violation(s))\n", violations)
		return
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func runTLA(preset, mutate, out string) {
	cfgs := configs(preset, mutate)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twe-spec: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	for _, cfg := range cfgs {
		if err := spec.WriteTLA(w, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "twe-spec: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
	}
}

func runRefine(path string, partial bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twe-spec: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := spec.ReadLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twe-spec: %v\n", err)
		os.Exit(1)
	}
	errs, err := spec.Refine(log, spec.RefineOpts{Strict: !partial})
	if err != nil {
		fmt.Fprintf(os.Stderr, "twe-spec: %v\n", err)
		os.Exit(1)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Printf("%s\n", e)
		}
		fmt.Fprintf(os.Stderr, "twe-spec: %s: %d refinement violation(s) across %d events, %d tasks\n",
			path, len(errs), len(log.Events), len(log.Tasks))
		os.Exit(1)
	}
	fmt.Printf("%s: ok — %d events over %d tasks are a behavior of the admission model\n",
		path, len(log.Events), len(log.Tasks))
}
