// Command twe-router is the twe-cluster routing control plane
// (internal/cluster, DESIGN.md §16): a thin proxy that partitions the
// store across a fleet of twe-serve shard processes by top-level
// effect region. Each request's declared effect routes it to the shard
// owning its region (session effects rewritten into per-upstream
// namespaces), cross-shard effects run through a two-phase
// prepare/commit coordinator (or a serial stop-the-world lane with
// -cross-lane serial), and everything else lands in the global lane.
//
// Typical use:
//
//	twe-serve -shard-id 0 -advertise 127.0.0.1 -addr 127.0.0.1:7270 &
//	twe-serve -shard-id 1 -advertise 127.0.0.1 -addr 127.0.0.1:7271 &
//	twe-router -addr 127.0.0.1:7280 -members 127.0.0.1:7270,127.0.0.1:7271
//	twe-load   -addr 127.0.0.1:7280 -conns 64 -requests 200
//
// -control-addr exposes the control plane over HTTP: /cluster (the
// JSON fleet snapshot twe-load -cluster-url consumes) and /healthz
// (503 naming the first unhealthy member). -member-debug wires the
// members' /debug/twe endpoints into the router's health probes, which
// also verify each member reports the shard id the router expects.
//
// The router drains gracefully on SIGINT/SIGTERM: it stops accepting,
// flushes every response still owed, shuts the coordinator down, and
// exits non-zero if sessions were still wedged at the timeout. Shards
// are separate processes — drain them after the router.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"twe/internal/cluster"
)

var (
	addrFlag        = flag.String("addr", "127.0.0.1:0", "TCP listen address for clients (port 0 = ephemeral)")
	addrFileFlag    = flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	membersFlag     = flag.String("members", "", "comma-separated twe-serve shard addresses, in shard-id order")
	memberDebugFlag = flag.String("member-debug", "", "comma-separated member debug-mux base URLs (http://host:port), parallel to -members; enables health probes")
	crossLaneFlag   = flag.String("cross-lane", "2pc", "cross-shard lane: 2pc (two-phase prepare/commit) or serial (stop-the-world)")
	probeFlag       = flag.Duration("probe-every", 0, "health-probe period when -member-debug is set (0 = 500ms default)")
	controlFlag     = flag.String("control-addr", "", "HTTP listen address for /cluster and /healthz (empty = disabled)")
	controlFileFlag = flag.String("control-addr-file", "", "write the bound control address to this file")
	drainFlag       = flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound")
)

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func main() {
	flag.Parse()
	members := splitList(*membersFlag)
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "twe-router: -members is required (comma-separated shard addresses)")
		os.Exit(2)
	}
	r, err := cluster.New(cluster.Config{
		Shards:     members,
		ShardDebug: splitList(*memberDebugFlag),
		CrossLane:  *crossLaneFlag,
		ProbeEvery: *probeFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "twe-router:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twe-router:", err)
		os.Exit(2)
	}
	fmt.Printf("twe-router: listening on %s (members=%d cross-lane=%s)\n",
		ln.Addr(), r.Members(), *crossLaneFlag)
	if *addrFileFlag != "" {
		if err := os.WriteFile(*addrFileFlag, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "twe-router:", err)
			os.Exit(2)
		}
	}

	var cln net.Listener
	if *controlFlag != "" {
		cln, err = net.Listen("tcp", *controlFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-router: control listen:", err)
			os.Exit(2)
		}
		if *controlFileFlag != "" {
			if err := os.WriteFile(*controlFileFlag, []byte(cln.Addr().String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "twe-router:", err)
				os.Exit(2)
			}
		}
		fmt.Printf("twe-router: control plane on http://%s/cluster (also /healthz)\n", cln.Addr())
		go func() { _ = http.Serve(cln, r.Handler()) }()
	}

	go r.Serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("twe-router: draining...")

	code := 0
	if err := r.Drain(*drainFlag); err != nil {
		fmt.Fprintln(os.Stderr, "twe-router:", err)
		code = 1
	}
	if cln != nil {
		cln.Close()
	}
	st := r.Stats()
	snap := r.Snapshot()
	var fwd, prep, srv int64
	for _, m := range snap.Members {
		fwd += m.Fwd
		prep += m.Prep
		srv += m.Srv
	}
	fmt.Printf("twe-router: drained: conns=%d requests=%d served=%d shed=%d busy=%d cancelled=%d rejected=%d errors=%d disconnects=%d fwd=%d prep=%d member-served=%d inflight=%d\n",
		st.ConnsAccepted, st.Requests, st.Served, st.Shed, st.Busy, st.Cancelled, st.Rejected, st.Errors,
		st.Disconnects, fwd, prep, srv, st.Inflight)
	if st.Inflight != 0 {
		fmt.Fprintf(os.Stderr, "twe-router: dirty drain: in-flight gauge leaked: %d\n", st.Inflight)
		code = 1
	}
	os.Exit(code)
}
