// Command twe-serve runs the TWE runtime behind a TCP service boundary
// (internal/svc): clients declare each request's effect on the wire and
// the effect scheduler is the admission-control and serialization layer.
//
// Typical use:
//
//	twe-serve -sched tree -par 4 -isolcheck -addr 127.0.0.1:7270 &
//	twe-load  -addr 127.0.0.1:7270 -conns 64 -requests 200
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting,
// serves everything already admitted, shuts the runtime down, and exits
// non-zero if the drain audit fails (runtime not quiesced, leaked
// in-flight gauge, isolation violations, or served-accounting mismatch).
// -metrics-addr exposes an HTTP debug mux: Prometheus text metrics
// (/metrics), the effect-contention and request-tracing snapshot
// (/debug/twe, DESIGN.md §14), Go profiling (/debug/pprof/) and expvar
// (/debug/vars). -req-trace turns on per-request span tracing;
// -trace writes a Chrome trace of the serving runtime at exit.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twe/internal/sched"
	"twe/internal/svc"
)

var (
	addrFlag        = flag.String("addr", "127.0.0.1:0", "TCP listen address (port 0 = ephemeral)")
	addrFileFlag    = flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	schedFlag       = flag.String("sched", "tree", "scheduler: "+sched.Usage())
	parFlag         = flag.Int("par", 4, "pool parallelism")
	shardsFlag      = flag.Int("shards", 8, "store shard count")
	keysFlag        = flag.Int("keys", 256, "store key count")
	maxInflightFlag = flag.Int("max-inflight", 0, "admitted-but-unresolved bound; excess gets busy (0 = unbounded)")
	deadlineFlag    = flag.Duration("deadline", 0, "per-request deadline; late requests are shed (0 = none)")
	isolFlag        = flag.Bool("isolcheck", false, "attach the isolation-oracle monitor")
	reqTraceFlag    = flag.Bool("req-trace", false, "per-request span tracing + phase histograms + contention attribution")
	traceEventsFlag = flag.Int("trace-events", 0, "tracer ring capacity per shard (0 = 4096, or 16384 with -req-trace)")
	traceFlag       = flag.String("trace", "", "write a Chrome trace here at exit")
	elogFlag        = flag.String("eventlog", "", "write the JSONL event log here at exit, for twe-spec -refine")
	metricsFlag     = flag.String("metrics-addr", "", "HTTP listen address for /metrics (empty = disabled)")
	metricsFileFlag = flag.String("metrics-addr-file", "", "write the bound metrics address to this file")
	drainFlag       = flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound")
	shardIDFlag     = flag.Int("shard-id", -1, "stable shard id inside a twe-cluster fleet (-1 = standalone)")
	advertiseFlag   = flag.String("advertise", "", "address published to the cluster control plane (empty = listen address)")
	prepareFlag     = flag.Duration("prepare-timeout", 0, "cross-shard prepared-hold bound before self-abort (0 = 5s default)")
	holdFlag        = flag.Duration("hold", 0, "artificial per-op service time (sleep at body start); makes cluster benches latency-bound on small machines")
)

func main() {
	flag.Parse()
	cfg := svc.Config{
		Addr:        *addrFlag,
		Sched:       *schedFlag,
		Par:         *parFlag,
		Shards:      *shardsFlag,
		Keys:        *keysFlag,
		MaxInflight: *maxInflightFlag,
		Deadline:    *deadlineFlag,
		Isolcheck:   *isolFlag,
		ReqTrace:    *reqTraceFlag,
		TraceEvents: *traceEventsFlag,
		TaskLog:     *elogFlag != "",
		ShardID:     *shardIDFlag,
		Advertise:   *advertiseFlag,
		PrepareHold: *prepareFlag,
	}
	if d := *holdFlag; d > 0 {
		cfg.Hold = func(string, int) { time.Sleep(d) }
	}
	s, err := svc.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twe-serve:", err)
		os.Exit(2)
	}
	fmt.Printf("twe-serve: listening on %s (sched=%s par=%d shards=%d keys=%d max-inflight=%d deadline=%v shard-id=%d)\n",
		s.Addr(), *schedFlag, *parFlag, *shardsFlag, *keysFlag, *maxInflightFlag, *deadlineFlag, s.ShardID())
	if *addrFileFlag != "" {
		if err := os.WriteFile(*addrFileFlag, []byte(s.Addr()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "twe-serve:", err)
			os.Exit(2)
		}
	}

	var mln net.Listener
	if *metricsFlag != "" {
		var err error
		mln, err = net.Listen("tcp", *metricsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-serve: metrics listen:", err)
			os.Exit(2)
		}
		if *metricsFileFlag != "" {
			if err := os.WriteFile(*metricsFileFlag, []byte(mln.Addr().String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "twe-serve:", err)
				os.Exit(2)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := s.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		// Contention/tracing snapshot, profiling and expvar share the mux
		// (the default ServeMux gets these for free; a custom mux must
		// mount them explicitly).
		mux.Handle("/debug/twe", s.DebugHandler(10))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		fmt.Printf("twe-serve: metrics on http://%s/metrics (also /debug/twe, /debug/pprof/, /debug/vars)\n", mln.Addr())
		go func() { _ = http.Serve(mln, mux) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("twe-serve: draining...")

	code := 0
	if err := s.Drain(*drainFlag); err != nil {
		fmt.Fprintln(os.Stderr, "twe-serve:", err)
		code = 1
	}
	// The debug mux outlives the drain on purpose (orchestrators scrape
	// final metrics); close its listener only once the audit is done.
	if mln != nil {
		mln.Close()
	}
	st := s.Stats()
	fmt.Printf("twe-serve: drained: conns=%d (v1=%d v2=%d) requests=%d served=%d shed=%d busy=%d cancelled=%d rejected=%d errors=%d disconnects=%d effcache=%d/%d effregs=%d inflight-peak=%d\n",
		st.ConnsAccepted, st.V1Conns, st.V2Conns, st.Requests, st.Served, st.Shed, st.Busy, st.Cancelled, st.Rejected, st.Errors,
		st.Disconnects, st.EffHits, st.EffHits+st.EffMisses, st.EffRegs, st.InflightPeak)

	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err == nil {
			err = s.Tracer().WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-serve: trace:", err)
			code = 1
		} else {
			fmt.Printf("twe-serve: wrote trace to %s\n", *traceFlag)
		}
	}
	if *elogFlag != "" {
		f, err := os.Create(*elogFlag)
		if err == nil {
			err = s.Tracer().WriteEventLog(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-serve: eventlog:", err)
			code = 1
		} else {
			fmt.Printf("twe-serve: wrote event log to %s (validate with twe-spec -refine)\n", *elogFlag)
		}
	}
	os.Exit(code)
}
