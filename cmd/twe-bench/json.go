// JSON benchmark mode: perf-trajectory snapshots for regression tracking.
//
// `twe-bench -json <dir>` runs every registry workload (internal/workloads,
// the same CI-sized inputs cmd/twe-trace uses) under both schedulers across
// the -threads sweep and writes one BENCH_<workload>.json per workload.
// The schema is documented in EXPERIMENTS.md ("Perf-trajectory JSON");
// sessions diff these files to catch scheduler-overhead regressions that
// the human-readable figure tables hide.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"twe/internal/core"
	"twe/internal/effect"
	"twe/internal/obs"
	"twe/internal/rpl"
	"twe/internal/workloads"
)

// benchRun is one (scheduler × parallelism) measurement of a workload.
type benchRun struct {
	Scheduler       string  `json:"scheduler"`
	Par             int     `json:"par"`
	Reps            int     `json:"reps"`
	NsPerOp         int64   `json:"ns_per_op"` // median wall time of one full run
	MinNs           int64   `json:"min_ns"`
	MaxNs           int64   `json:"max_ns"`
	Tasks           uint64  `json:"tasks"`           // tasks per run (submits + spawns)
	TasksPerSec     float64 `json:"tasks_per_sec"`   // tasks / median seconds
	ConflictChecks  uint64  `json:"conflict_checks"` // per run (averaged over reps)
	ConflictHits    uint64  `json:"conflict_hits"`
	ConflictHitRate float64 `json:"conflict_hit_rate"`
	Blocks          uint64  `json:"blocks"`
	Transfers       uint64  `json:"transfers"`
	// Batched-admission counters (DESIGN.md §12), per run; zero for
	// workloads that never call SubmitBatch.
	BatchSubmits  uint64 `json:"batch_submits,omitempty"`
	BatchTasks    uint64 `json:"batch_tasks,omitempty"`
	BatchDescents uint64 `json:"batch_descents,omitempty"`
	// Lock-free admission split and pool steal count (DESIGN.md §17),
	// per run; fast/slow admits are zero except under tree-lockfree.
	FastAdmits uint64 `json:"fast_admits,omitempty"`
	SlowAdmits uint64 `json:"slow_admits,omitempty"`
	PoolSteals uint64 `json:"pool_steals,omitempty"`
}

// submitBench is the admission microbenchmark recorded alongside the
// "batch" workload: submissions/sec of per-task ExecuteLater vs one
// SubmitBatch call for a conflict-free 64-task group (the same shape as
// BenchmarkSubmitBatch in bench_test.go; only the submission phase is
// timed, each round still drains before the next).
type submitBench struct {
	Scheduler         string  `json:"scheduler"`
	Par               int     `json:"par"`
	Batch             int     `json:"batch"`
	Rounds            int     `json:"rounds"`
	PerTaskSubmitsSec float64 `json:"per_task_submits_per_sec"`
	BatchSubmitsSec   float64 `json:"batch_submits_per_sec"`
	Speedup           float64 `json:"speedup"` // batch / per-task
	// FastpathRate is fast / (fast + slow) admissions over the whole
	// measurement (DESIGN.md §17) — 0 for locked schedulers, and ≈1 for
	// tree-lockfree on this conflict-free fully-specified shape.
	FastpathRate float64 `json:"fastpath_rate,omitempty"`
}

// benchFile is the BENCH_<workload>.json document.
type benchFile struct {
	SchemaVersion int        `json:"schema_version"`
	Workload      string     `json:"workload"`
	GeneratedBy   string     `json:"generated_by"`
	Runs          []benchRun `json:"runs"`
	// SubmitBench is present only in BENCH_batch.json: the batched vs
	// per-task admission comparison per scheduler.
	SubmitBench []submitBench `json:"submit_bench,omitempty"`
}

// runJSON produces BENCH_<workload>.json for every registry workload (or
// the -apps subset). The "serve" workload is excluded unless named
// explicitly: its benchmark artifact is BENCH_serve.json from twe-load,
// which measures the wire path rather than an in-process replay.
func runJSON(dir string, threads []int, reps int, apps string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var selected map[string]bool
	if apps != "" {
		selected = make(map[string]bool)
		for _, name := range strings.Split(apps, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := workloads.Get(name); err != nil {
				return err
			}
			selected[name] = true
		}
	}
	for _, w := range workloads.All() {
		if selected != nil && !selected[w.Name] {
			continue
		}
		if selected == nil && w.Name == "serve" {
			fmt.Printf("skipping %s (benchmarked over the wire by twe-load; pass -apps serve to force)\n", w.Name)
			continue
		}
		doc := benchFile{SchemaVersion: 1, Workload: w.Name, GeneratedBy: "twe-bench -json"}
		for _, sched := range []struct {
			name string
			mk   func() core.Scheduler
		}{{"tree", mkTree}, {"naive", mkNaive}, {"tree-lockfree", mkLockFree}} {
			for _, par := range threads {
				r, err := measureJSON(w, sched.name, sched.mk, par, reps)
				if err != nil {
					return fmt.Errorf("%s/%s@%d: %w", w.Name, sched.name, par, err)
				}
				doc.Runs = append(doc.Runs, r)
			}
			if w.Name == "batch" {
				sb, err := measureSubmitBench(sched.name, sched.mk, threads[len(threads)-1])
				if err != nil {
					return fmt.Errorf("%s/%s submit bench: %w", w.Name, sched.name, err)
				}
				doc.SubmitBench = append(doc.SubmitBench, sb)
			}
		}
		path := filepath.Join(dir, "BENCH_"+w.Name+".json")
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d runs)\n", path, len(doc.Runs))
	}
	return nil
}

// measureJSON times reps runs of w under one scheduler/parallelism and
// folds in the tracer's scheduler metrics. One metrics-only tracer spans
// all reps; per-run counters divide by reps.
func measureJSON(w workloads.Workload, schedName string, mk func() core.Scheduler, par, reps int) (benchRun, error) {
	tr := obs.New(obs.WithCapacity(1024))
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := w.Run(mk, par, core.WithTracer(tr)); err != nil {
			return benchRun{}, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	med := times[len(times)/2]

	s := tr.Metrics().Snapshot()
	n := uint64(reps)
	tasks := (s.TasksSubmitted + s.Spawns) / n
	r := benchRun{
		Scheduler:       schedName,
		Par:             par,
		Reps:            reps,
		NsPerOp:         med.Nanoseconds(),
		MinNs:           times[0].Nanoseconds(),
		MaxNs:           times[len(times)-1].Nanoseconds(),
		Tasks:           tasks,
		ConflictChecks:  s.ConflictChecks / n,
		ConflictHits:    s.ConflictHits / n,
		ConflictHitRate: s.ConflictHitRate(),
		Blocks:          s.Blocks / n,
		Transfers:       s.Transfers / n,
		BatchSubmits:    s.BatchSubmits / n,
		BatchTasks:      s.BatchTasks / n,
		BatchDescents:   s.BatchDescents / n,
		FastAdmits:      s.AdmitFastpath / n,
		SlowAdmits:      s.AdmitSlowpath / n,
		PoolSteals:      s.PoolSteals / n,
	}
	if sec := med.Seconds(); sec > 0 {
		r.TasksPerSec = float64(tasks) / sec
	}
	return r, nil
}

// measureSubmitBench times the admission phase of per-task ExecuteLater vs
// SubmitBatch for a conflict-free 64-task group under a shared namespace
// prefix, draining between rounds (untimed), exactly like
// BenchmarkSubmitBatch in bench_test.go.
func measureSubmitBench(schedName string, mk func() core.Scheduler, par int) (submitBench, error) {
	const batch, rounds, warmup = 64, 300, 30
	tr := obs.New(obs.WithCapacity(64))
	rt := core.NewRuntime(mk(), par, core.WithTracer(tr))
	defer rt.Shutdown()
	tasks := make([]*core.Task, batch)
	subs := make([]core.Submission, batch)
	for i := range tasks {
		tasks[i] = core.NewTask("t",
			effect.NewSet(effect.WriteEff(rpl.New(rpl.N("srv"), rpl.N("data"), rpl.N("R"), rpl.Idx(i)))),
			func(_ *core.Ctx, _ any) (any, error) { return nil, nil })
		subs[i] = core.Submission{Task: tasks[i]}
	}
	futs := make([]*core.Future, batch)
	var perTask, batched time.Duration
	for r := 0; r < warmup+rounds; r++ {
		start := time.Now()
		for j, t := range tasks {
			futs[j] = rt.ExecuteLater(t, nil)
		}
		if r >= warmup {
			perTask += time.Since(start)
		}
		if err := rt.WaitAll(futs); err != nil {
			return submitBench{}, err
		}
	}
	for r := 0; r < warmup+rounds; r++ {
		start := time.Now()
		fs := rt.SubmitBatch(subs)
		if r >= warmup {
			batched += time.Since(start)
		}
		if err := rt.WaitAll(fs); err != nil {
			return submitBench{}, err
		}
	}
	sb := submitBench{Scheduler: schedName, Par: par, Batch: batch, Rounds: rounds}
	if s := perTask.Seconds(); s > 0 {
		sb.PerTaskSubmitsSec = float64(rounds*batch) / s
	}
	if s := batched.Seconds(); s > 0 {
		sb.BatchSubmitsSec = float64(rounds*batch) / s
	}
	if sb.PerTaskSubmitsSec > 0 {
		sb.Speedup = sb.BatchSubmitsSec / sb.PerTaskSubmitsSec
	}
	ms := tr.Metrics().Snapshot()
	if total := ms.AdmitFastpath + ms.AdmitSlowpath; total > 0 {
		sb.FastpathRate = float64(ms.AdmitFastpath) / float64(total)
	}
	return sb, nil
}
