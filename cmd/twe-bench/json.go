// JSON benchmark mode: perf-trajectory snapshots for regression tracking.
//
// `twe-bench -json <dir>` runs every registry workload (internal/workloads,
// the same CI-sized inputs cmd/twe-trace uses) under both schedulers across
// the -threads sweep and writes one BENCH_<workload>.json per workload.
// The schema is documented in EXPERIMENTS.md ("Perf-trajectory JSON");
// sessions diff these files to catch scheduler-overhead regressions that
// the human-readable figure tables hide.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"twe/internal/core"
	"twe/internal/obs"
	"twe/internal/workloads"
)

// benchRun is one (scheduler × parallelism) measurement of a workload.
type benchRun struct {
	Scheduler       string  `json:"scheduler"`
	Par             int     `json:"par"`
	Reps            int     `json:"reps"`
	NsPerOp         int64   `json:"ns_per_op"` // median wall time of one full run
	MinNs           int64   `json:"min_ns"`
	MaxNs           int64   `json:"max_ns"`
	Tasks           uint64  `json:"tasks"`           // tasks per run (submits + spawns)
	TasksPerSec     float64 `json:"tasks_per_sec"`   // tasks / median seconds
	ConflictChecks  uint64  `json:"conflict_checks"` // per run (averaged over reps)
	ConflictHits    uint64  `json:"conflict_hits"`
	ConflictHitRate float64 `json:"conflict_hit_rate"`
	Blocks          uint64  `json:"blocks"`
	Transfers       uint64  `json:"transfers"`
}

// benchFile is the BENCH_<workload>.json document.
type benchFile struct {
	SchemaVersion int        `json:"schema_version"`
	Workload      string     `json:"workload"`
	GeneratedBy   string     `json:"generated_by"`
	Runs          []benchRun `json:"runs"`
}

// runJSON produces BENCH_<workload>.json for every registry workload (or
// the -apps subset). The "serve" workload is excluded unless named
// explicitly: its benchmark artifact is BENCH_serve.json from twe-load,
// which measures the wire path rather than an in-process replay.
func runJSON(dir string, threads []int, reps int, apps string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var selected map[string]bool
	if apps != "" {
		selected = make(map[string]bool)
		for _, name := range strings.Split(apps, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := workloads.Get(name); err != nil {
				return err
			}
			selected[name] = true
		}
	}
	for _, w := range workloads.All() {
		if selected != nil && !selected[w.Name] {
			continue
		}
		if selected == nil && w.Name == "serve" {
			fmt.Printf("skipping %s (benchmarked over the wire by twe-load; pass -apps serve to force)\n", w.Name)
			continue
		}
		doc := benchFile{SchemaVersion: 1, Workload: w.Name, GeneratedBy: "twe-bench -json"}
		for _, sched := range []struct {
			name string
			mk   func() core.Scheduler
		}{{"tree", mkTree}, {"naive", mkNaive}} {
			for _, par := range threads {
				r, err := measureJSON(w, sched.name, sched.mk, par, reps)
				if err != nil {
					return fmt.Errorf("%s/%s@%d: %w", w.Name, sched.name, par, err)
				}
				doc.Runs = append(doc.Runs, r)
			}
		}
		path := filepath.Join(dir, "BENCH_"+w.Name+".json")
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d runs)\n", path, len(doc.Runs))
	}
	return nil
}

// measureJSON times reps runs of w under one scheduler/parallelism and
// folds in the tracer's scheduler metrics. One metrics-only tracer spans
// all reps; per-run counters divide by reps.
func measureJSON(w workloads.Workload, schedName string, mk func() core.Scheduler, par, reps int) (benchRun, error) {
	tr := obs.New(obs.WithCapacity(1024))
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := w.Run(mk, par, core.WithTracer(tr)); err != nil {
			return benchRun{}, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	med := times[len(times)/2]

	s := tr.Metrics().Snapshot()
	n := uint64(reps)
	tasks := (s.TasksSubmitted + s.Spawns) / n
	r := benchRun{
		Scheduler:       schedName,
		Par:             par,
		Reps:            reps,
		NsPerOp:         med.Nanoseconds(),
		MinNs:           times[0].Nanoseconds(),
		MaxNs:           times[len(times)-1].Nanoseconds(),
		Tasks:           tasks,
		ConflictChecks:  s.ConflictChecks / n,
		ConflictHits:    s.ConflictHits / n,
		ConflictHitRate: s.ConflictHitRate(),
		Blocks:          s.Blocks / n,
		Transfers:       s.Transfers / n,
	}
	if sec := med.Seconds(); sec > 0 {
		r.TasksPerSec = float64(tasks) / sec
	}
	return r, nil
}
