// Command twe-bench regenerates the evaluation figures of the tasks-with-
// effects paper (PPoPP 2013 §6; dissertation Ch. 6 and §7.6) on this
// machine. Each figure is printed as a table with the same series the
// paper plots:
//
//	-fig 6.1   Barnes-Hut / Monte Carlo / K-Means speedups, TWE (naive
//	           scheduler) vs a DPJ-like fork-join baseline.
//	-fig 6.2   FourWins AI and ImageEdit (edge detection, sharpen)
//	           speedups under the naive scheduler.
//	-fig 6.3   K-Means times: tree vs single-queue vs unsafe sync, for
//	           K = 25000, 5000, 1000 (scaled by -scale).
//	-fig 6.4   SSCA2 (tree / single-queue / sync), TSP (tree /
//	           single-queue / fork-join), and Barnes-Hut + Monte Carlo +
//	           FourWins under both TWE schedulers.
//	-fig 7.6   dynamic effects: mesh refinement and graph relabeling,
//	           sequential vs parallel dyneff vs TWE-integrated, with abort
//	           counts and overhead vs the uninstrumented baseline.
//	-fig all   everything.
//
// Absolute numbers depend on the host (the paper used a 40-core Xeon
// E7-4860); the series *relationships* are the reproduction target. Use
// -scale paper for the paper's input sizes and -threads to set the sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"twe/internal/apps/barneshut"
	"twe/internal/apps/dyngraph"
	"twe/internal/apps/fourwins"
	"twe/internal/apps/imageedit"
	"twe/internal/apps/kmeans"
	"twe/internal/apps/mesh"
	"twe/internal/apps/montecarlo"
	"twe/internal/apps/ssca2"
	"twe/internal/apps/tsp"
	"twe/internal/bench"
	"twe/internal/core"
	"twe/internal/effect"
	"twe/internal/rpl"
	"twe/internal/sched"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate: 6.1, 6.2, 6.3, 6.4, 7.6, all")
	threadsFlag = flag.String("threads", "1,2,4,8", "comma-separated thread sweep")
	repsFlag    = flag.Int("reps", 3, "repetitions per configuration (paper: 11)")
	scaleFlag   = flag.String("scale", "small", "input scale: small (CI-sized) or paper")
	jsonFlag    = flag.String("json", "", "write BENCH_<workload>.json perf snapshots into this directory and exit (see EXPERIMENTS.md for the schema)")
	appsFlag    = flag.String("apps", "", "with -json: comma-separated registry workloads to run (empty = all)")
)

// mkSched resolves a scheduler name through the internal/sched registry;
// every scheduler this binary constructs goes through it.
func mkSched(name string) func() core.Scheduler {
	mk, err := sched.Maker(sched.Config{Name: name})
	if err != nil {
		panic(err)
	}
	return mk
}

var (
	mkNaive    = mkSched("naive")
	mkTree     = mkSched("tree")
	mkLockFree = mkSched("tree-lockfree")
)

type sizes struct {
	kmPoints, kmAttrs, kmIters, kmChunk int
	kmKs                                []int
	ssNodes, ssEdges, ssBatch           int
	tspNodes, tspCutoff                 int
	bhBodies                            int
	mcPaths, mcSteps, mcBatch           int
	fwDepth                             int
	imgW, imgH                          int
	meshW, meshH                        int
	dgNodes, dgEdges                    int
}

func sizesFor(scale string) (sizes, error) {
	switch scale {
	case "small":
		return sizes{
			kmPoints: 4000, kmAttrs: 8, kmIters: 1, kmChunk: 8,
			kmKs:    []int{2000, 400, 80},
			ssNodes: 512, ssEdges: 4096, ssBatch: 8,
			tspNodes: 11, tspCutoff: 4,
			bhBodies: 20000,
			mcPaths:  4000, mcSteps: 120, mcBatch: 64,
			fwDepth: 6,
			imgW:    1000, imgH: 700,
			meshW: 60, meshH: 60,
			dgNodes: 3000, dgEdges: 3900,
		}, nil
	case "paper":
		return sizes{
			kmPoints: 50000, kmAttrs: 8, kmIters: 3, kmChunk: 1,
			kmKs:    []int{25000, 5000, 1000},
			ssNodes: 1 << 10, ssEdges: 1 << 15, ssBatch: 1,
			tspNodes: 13, tspCutoff: 6,
			bhBodies: 20000,
			mcPaths:  10000, mcSteps: 240, mcBatch: 64,
			fwDepth: 8,
			imgW:    3000, imgH: 2000,
			meshW: 120, meshH: 120,
			dgNodes: 10000, dgEdges: 13000,
		}, nil
	default:
		return sizes{}, fmt.Errorf("unknown scale %q", scale)
	}
}

func main() {
	flag.Parse()
	threads, err := bench.ParseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sz, err := sizesFor(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	reps := *repsFlag

	if *jsonFlag != "" {
		if err := runJSON(*jsonFlag, threads, reps, *appsFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func(sizes, []int, int) []*bench.Figure) {
		for _, fig := range f(sz, threads, reps) {
			fig.Print(os.Stdout)
		}
		_ = name
	}

	fmt.Printf("twe-bench: scale=%s threads=%v reps=%d\n", *scaleFlag, threads, reps)
	switch *figFlag {
	case "6.1":
		run("6.1", fig61)
	case "6.2":
		run("6.2", fig62)
	case "6.3":
		run("6.3", fig63)
	case "6.4":
		run("6.4", fig64)
	case "7.6":
		run("7.6", fig76)
	case "ablation":
		run("ablation", figAblation)
	case "all":
		run("6.1", fig61)
		run("6.2", fig62)
		run("6.3", fig63)
		run("6.4", fig64)
		run("7.6", fig76)
		run("ablation", figAblation)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

// fig61: speedups of the DPJ-ported benchmarks, TWE (naive scheduler) vs a
// DPJ-like version with no run-time effect scheduling, both relative to
// the sequential code.
func fig61(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure

	// Barnes-Hut.
	{
		bodies := barneshut.Generate(barneshut.Config{Bodies: sz.bhBodies, Theta: 0.5, Seed: 11})
		tr := barneshut.BuildTree(bodies, 0.5)
		base, _ := bench.MeasureOnce("seq", reps, func() error {
			b := append([]barneshut.Body(nil), bodies...)
			barneshut.RunSeq(b, tr)
			return nil
		})
		fig := &bench.Figure{ID: "6.1a", Title: "Barnes-Hut force computation", Baseline: "sequential", BaseTime: base}
		fig.Series = append(fig.Series, bench.Measure("TWEJava(naive)", threads, reps, func(par int) error {
			b := append([]barneshut.Body(nil), bodies...)
			return barneshut.RunTWE(b, tr, mkNaive, par)
		}))
		fig.Series = append(fig.Series, bench.Measure("DPJ-like", threads, reps, func(par int) error {
			b := append([]barneshut.Body(nil), bodies...)
			barneshut.RunPool(b, tr, par)
			return nil
		}))
		figs = append(figs, fig)
	}

	// Monte Carlo.
	{
		cfg := montecarlo.Config{Paths: sz.mcPaths, Steps: sz.mcSteps, Seed: 17, BatchSize: sz.mcBatch}
		base, _ := bench.MeasureOnce("seq", reps, func() error { montecarlo.RunSeq(cfg); return nil })
		fig := &bench.Figure{ID: "6.1b", Title: "Monte Carlo financial simulation", Baseline: "sequential", BaseTime: base}
		fig.Series = append(fig.Series, bench.Measure("TWEJava(naive)", threads, reps, func(par int) error {
			_, err := montecarlo.RunTWE(cfg, mkNaive, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("DPJ-like", threads, reps, func(par int) error {
			montecarlo.RunPool(cfg, par)
			return nil
		}))
		figs = append(figs, fig)
	}

	// K-Means at the paper's Fig 6.1 configuration (largest K).
	{
		cfg := kmeans.Config{Points: sz.kmPoints, Attributes: sz.kmAttrs, K: sz.kmKs[0], Iters: sz.kmIters, Seed: 1, ChunkSize: sz.kmChunk}
		in := kmeans.Generate(cfg)
		base, _ := bench.MeasureOnce("seq", reps, func() error { kmeans.RunSeq(in); return nil })
		fig := &bench.Figure{ID: "6.1c", Title: fmt.Sprintf("K-Means (K=%d)", cfg.K), Baseline: "sequential", BaseTime: base}
		fig.Series = append(fig.Series, bench.Measure("TWEJava(naive)", threads, reps, func(par int) error {
			_, err := kmeans.RunTWE(in, mkNaive, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("DPJ-like", threads, reps, func(par int) error {
			kmeans.RunSync(in, par)
			return nil
		}))
		figs = append(figs, fig)
	}
	return figs
}

// fig62: FourWins AI and ImageEdit filters under the naive scheduler,
// speedups relative to the single-thread TWE run (the paper had no pure
// sequential versions of these applications).
func fig62(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure

	// FourWins AI.
	{
		var board fourwins.Board
		for _, m := range []struct {
			c int
			p int8
		}{{3, 1}, {3, 2}, {2, 1}, {4, 2}} {
			board.Drop(m.c, m.p)
		}
		s := bench.Measure("TWEJava(naive)", threads, reps, func(par int) error {
			_, err := fourwins.RunTWE(board, 1, sz.fwDepth, mkNaive, par)
			return err
		})
		fig := &bench.Figure{ID: "6.2a", Title: fmt.Sprintf("FourWins AI (depth %d)", sz.fwDepth), Baseline: "TWE @1 thread", Series: []bench.Series{s}}
		if len(s.Points) > 0 {
			fig.BaseTime = s.Points[0].Median
		}
		figs = append(figs, fig)
	}

	// ImageEdit: edge detection and sharpen.
	for _, fc := range []struct {
		id, title string
		filter    imageedit.Filter
	}{
		{"6.2b", "ImageEdit — edge detection", imageedit.NewEdgeDetect(200)},
		{"6.2c", "ImageEdit — sharpen", imageedit.NewSharpen()},
	} {
		src := imageedit.New(sz.imgW, sz.imgH, 13)
		s := bench.Measure("TWEJava(naive)", threads, reps, func(par int) error {
			rt := core.NewRuntime(mkNaive(), par)
			defer rt.Shutdown()
			ed := imageedit.NewEditor(rt)
			ed.Open(1, src.Clone())
			_, err := rt.GetValue(ed.ApplyAsync(1, fc.filter))
			return err
		})
		fig := &bench.Figure{ID: fc.id, Title: fc.title, Baseline: "TWE @1 thread", Series: []bench.Series{s}}
		if len(s.Points) > 0 {
			fig.BaseTime = s.Points[0].Median
		}
		figs = append(figs, fig)
	}
	return figs
}

// fig63: K-Means running time under the tree scheduler vs the single-queue
// scheduler vs the unsafe sync version, across the contention sweep K.
func fig63(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure
	for i, k := range sz.kmKs {
		cfg := kmeans.Config{Points: sz.kmPoints, Attributes: sz.kmAttrs, K: k, Iters: sz.kmIters, Seed: 1, ChunkSize: sz.kmChunk}
		in := kmeans.Generate(cfg)
		fig := &bench.Figure{
			ID:    fmt.Sprintf("6.3%c", 'a'+i),
			Title: fmt.Sprintf("K-Means, clusters=%d (lower K = higher contention)", k),
		}
		fig.Series = append(fig.Series, bench.Measure("SingleQueue", threads, reps, func(par int) error {
			_, err := kmeans.RunTWE(in, mkNaive, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("Tree", threads, reps, func(par int) error {
			_, err := kmeans.RunTWE(in, mkTree, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("kmeans-Sync", threads, reps, func(par int) error {
			kmeans.RunSync(in, par)
			return nil
		}))
		figs = append(figs, fig)
	}
	return figs
}

// fig64: SSCA2, TSP and the coarser benchmarks under both schedulers.
func fig64(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure

	// SSCA2.
	{
		cfg := ssca2.Config{Nodes: sz.ssNodes, Edges: sz.ssEdges, Seed: 3, Batch: sz.ssBatch}
		edges := ssca2.Generate(cfg)
		fig := &bench.Figure{ID: "6.4a", Title: "SSCA2 graph construction"}
		fig.Series = append(fig.Series, bench.Measure("SingleQueue", threads, reps, func(par int) error {
			_, err := ssca2.RunTWE(cfg, edges, mkNaive, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("Tree", threads, reps, func(par int) error {
			_, err := ssca2.RunTWE(cfg, edges, mkTree, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("SSCA2-sync", threads, reps, func(par int) error {
			ssca2.RunSync(cfg, edges, par)
			return nil
		}))
		figs = append(figs, fig)
	}

	// TSP.
	{
		cfg := tsp.Config{Nodes: sz.tspNodes, CutOff: sz.tspCutoff, Seed: 9}
		d := tsp.Generate(cfg)
		fig := &bench.Figure{ID: "6.4b", Title: fmt.Sprintf("TSP, %d nodes, cut-off=%d", cfg.Nodes, cfg.CutOff)}
		fig.Series = append(fig.Series, bench.Measure("SingleQueue", threads, reps, func(par int) error {
			_, err := tsp.RunTWE(d, cfg, mkNaive, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("Tree", threads, reps, func(par int) error {
			_, err := tsp.RunTWE(d, cfg, mkTree, par)
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("ForkJoinTask", threads, reps, func(par int) error {
			tsp.RunForkJoin(d, cfg.CutOff, par)
			return nil
		}))
		figs = append(figs, fig)
	}

	// Barnes-Hut, Monte Carlo, FourWins under both schedulers.
	{
		bodies := barneshut.Generate(barneshut.Config{Bodies: sz.bhBodies, Theta: 0.5, Seed: 11})
		tr := barneshut.BuildTree(bodies, 0.5)
		mcCfg := montecarlo.Config{Paths: sz.mcPaths, Steps: sz.mcSteps, Seed: 17, BatchSize: sz.mcBatch}
		var board fourwins.Board
		board.Drop(3, 1)
		board.Drop(3, 2)

		fig := &bench.Figure{ID: "6.4c", Title: "Barnes-Hut / Monte Carlo / FourWins, tree vs single queue"}
		fig.Series = append(fig.Series,
			bench.Measure("BH-Tree", threads, reps, func(par int) error {
				b := append([]barneshut.Body(nil), bodies...)
				return barneshut.RunTWE(b, tr, mkTree, par)
			}),
			bench.Measure("BH-Queue", threads, reps, func(par int) error {
				b := append([]barneshut.Body(nil), bodies...)
				return barneshut.RunTWE(b, tr, mkNaive, par)
			}),
			bench.Measure("MC-Tree", threads, reps, func(par int) error {
				_, err := montecarlo.RunTWE(mcCfg, mkTree, par)
				return err
			}),
			bench.Measure("MC-Queue", threads, reps, func(par int) error {
				_, err := montecarlo.RunTWE(mcCfg, mkNaive, par)
				return err
			}),
			bench.Measure("FW-Tree", threads, reps, func(par int) error {
				_, err := fourwins.RunTWE(board, 1, sz.fwDepth, mkTree, par)
				return err
			}),
			bench.Measure("FW-Queue", threads, reps, func(par int) error {
				_, err := fourwins.RunTWE(board, 1, sz.fwDepth, mkNaive, par)
				return err
			}),
		)
		figs = append(figs, fig)
	}
	return figs
}

// figAblation isolates the scheduler design choices DESIGN.md calls out:
// the §5.5.2 root read-write-lock fast path and the raw per-task
// scheduling cost of each scheduler under disjoint vs conflicting effects.
func figAblation(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure
	const tasksPerRun = 20000

	// Root RW ablation: disjoint-subtree task storm.
	{
		fig := &bench.Figure{ID: "A1", Title: "Root RW-lock ablation (§5.5.2): 20k disjoint-subtree tasks"}
		for _, tc := range []struct {
			name string
			mk   func() core.Scheduler
		}{
			{"RootRW", mkTree},
			{"RootMutex", mkSched("tree-rootmutex")},
			{"LockFree", mkLockFree},
		} {
			tc := tc
			fig.Series = append(fig.Series, bench.Measure(tc.name, threads, reps, func(par int) error {
				rt := core.NewRuntime(tc.mk(), par)
				defer rt.Shutdown()
				tasks := make([]*core.Task, 64)
				for i := range tasks {
					i := i
					tasks[i] = core.NewTask("t",
						effect.NewSet(effect.WriteEff(rpl.New(rpl.N("Sub"), rpl.Idx(i), rpl.N("Leaf")))),
						func(_ *core.Ctx, _ any) (any, error) { return nil, nil })
				}
				futs := make([]*core.Future, 0, tasksPerRun)
				for i := 0; i < tasksPerRun; i++ {
					futs = append(futs, rt.ExecuteLater(tasks[i%64], nil))
				}
				for _, f := range futs {
					if _, err := rt.GetValue(f); err != nil {
						return err
					}
				}
				return nil
			}))
		}
		figs = append(figs, fig)
	}

	// Per-task cost: queue vs tree, disjoint vs conflicting effects.
	{
		fig := &bench.Figure{ID: "A2", Title: "Scheduler per-task overhead: 20k tasks, disjoint (D) vs one shared region (C)"}
		for _, tc := range []struct {
			name     string
			mk       func() core.Scheduler
			conflict bool
		}{
			{"Queue-D", mkNaive, false},
			{"Queue-C", mkNaive, true},
			{"Tree-D", mkTree, false},
			{"Tree-C", mkTree, true},
			{"LockFree-D", mkLockFree, false},
			{"LockFree-C", mkLockFree, true},
		} {
			tc := tc
			fig.Series = append(fig.Series, bench.Measure(tc.name, threads, reps, func(par int) error {
				rt := core.NewRuntime(tc.mk(), par)
				defer rt.Shutdown()
				mkTask := func(i int) *core.Task {
					reg := rpl.New(rpl.N("Hot"))
					if !tc.conflict {
						reg = rpl.New(rpl.N("Cold"), rpl.Idx(i%64))
					}
					return core.NewTask("t", effect.NewSet(effect.WriteEff(reg)),
						func(_ *core.Ctx, _ any) (any, error) { return nil, nil })
				}
				for i := 0; i < tasksPerRun; i += 256 {
					futs := make([]*core.Future, 0, 256)
					for j := 0; j < 256; j++ {
						futs = append(futs, rt.ExecuteLater(mkTask(i+j), nil))
					}
					for _, f := range futs {
						if _, err := rt.GetValue(f); err != nil {
							return err
						}
					}
				}
				return nil
			}))
		}
		figs = append(figs, fig)
	}
	return figs
}

// fig76: the dynamic-effects evaluation — self-relative speedups and
// overhead vs the uninstrumented baseline, plus abort counts.
func fig76(sz sizes, threads []int, reps int) []*bench.Figure {
	var figs []*bench.Figure

	// Mesh refinement.
	{
		cfg := mesh.Config{W: sz.meshW, H: sz.meshH, BadFrac: 0.3, Threshold: 0.5, Spread: 0.9, MaxCavity: 8, Seed: 21}
		plain, _ := bench.MeasureOnce("plain", reps, func() error {
			m := mesh.Generate(cfg)
			mesh.RunPlain(m)
			return nil
		})
		var lastAborts int64
		fig := &bench.Figure{ID: "7.6a", Title: "Delaunay-style mesh refinement (dynamic effects)",
			Baseline: "uninstrumented sequential", BaseTime: plain}
		fig.Series = append(fig.Series, bench.Measure("DynEff", threads, reps, func(par int) error {
			m := mesh.Generate(cfg)
			res, err := mesh.RunDyn(m, par)
			if res != nil {
				lastAborts = res.Aborts
			}
			return err
		}))
		fig.Series = append(fig.Series, bench.Measure("DynEff+TWE", threads, reps, func(par int) error {
			m := mesh.Generate(cfg)
			_, err := mesh.RunTWE(m, mkTree, par)
			return err
		}))
		fig.Notes = append(fig.Notes, fmt.Sprintf("aborts in last DynEff run: %d", lastAborts))
		figs = append(figs, fig)
	}

	// Graph relabeling.
	{
		cfg := dyngraph.Config{Nodes: sz.dgNodes, Edges: sz.dgEdges, Seed: 23}
		plain, _ := bench.MeasureOnce("plain", reps, func() error {
			g := dyngraph.Generate(cfg)
			dyngraph.RunPlain(g)
			return nil
		})
		var lastAborts int64
		fig := &bench.Figure{ID: "7.6b", Title: "Irregular graph relabeling (dynamic effects)",
			Baseline: "uninstrumented sequential", BaseTime: plain}
		fig.Series = append(fig.Series, bench.Measure("DynEff", threads, reps, func(par int) error {
			g := dyngraph.Generate(cfg)
			res, err := dyngraph.RunDyn(g, par)
			if res != nil {
				lastAborts = res.Aborts
			}
			return err
		}))
		fig.Notes = append(fig.Notes, fmt.Sprintf("aborts in last DynEff run: %d", lastAborts))
		figs = append(figs, fig)
	}
	return figs
}
