// Command twe-trace runs one of the example TWE workloads (internal/apps)
// under the observability tracer (internal/obs) and exports the results:
//
//	twe-trace -app kmeans -sched tree -par 4 -trace kmeans.json -metrics kmeans.prom
//
// The trace file is Chrome trace-event JSON — open it at https://ui.perfetto.dev
// (or chrome://tracing) to see per-worker task run spans, block/unblock
// nesting, and conflict-stall instants. The metrics file is Prometheus text
// exposition format; a human-readable snapshot summary is always printed to
// stderr.
//
// With -isolcheck the run also installs the independent isolation oracle
// (internal/isolcheck); its violations (there should be none) and
// peak-concurrency high-water marks appear as trace instants.
//
// With -eventlog FILE the run records the task registry alongside the
// event ring and dumps the JSONL event log on exit; `twe-spec -refine
// FILE` then replays it against the executable admission model.
//
// Validation modes for CI (no external tools needed):
//
//	twe-trace -check trace.json        # structurally validate a trace file
//	twe-trace -checkmetrics m.prom     # validate a Prometheus dump
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twe/internal/core"
	"twe/internal/isolcheck"
	"twe/internal/obs"
	"twe/internal/sched"
	"twe/internal/workloads"
)

var (
	appFlag     = flag.String("app", "", "workload to run (see -list)")
	schedFlag   = flag.String("sched", "tree", "scheduler: "+sched.Usage())
	parFlag     = flag.Int("par", 4, "pool parallelism")
	traceFlag   = flag.String("trace", "", "write Chrome trace-event JSON to this file")
	metricsFlag = flag.String("metrics", "", "write Prometheus text metrics to this file")
	eventsFlag  = flag.Int("events", 1<<14, "tracer ring capacity per shard (events)")
	elogFlag    = flag.String("eventlog", "", "write the JSONL event log (tasks + events) to this file, for twe-spec -refine")
	isoFlag     = flag.Bool("isolcheck", false, "run the isolation oracle and mirror its findings into the trace")
	faultsFlag  = flag.Bool("faults", false, "shorthand for -app faults -isolcheck: run the fault-injection storm under the oracle")
	listFlag    = flag.Bool("list", false, "list available workloads and exit")
	checkFlag   = flag.String("check", "", "validate a Chrome trace JSON file and exit")
	checkMFlag  = flag.String("checkmetrics", "", "validate a Prometheus metrics dump and exit")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twe-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	switch {
	case *listFlag:
		for _, w := range workloads.All() {
			fmt.Printf("%-12s %s\n", w.Name, w.Desc)
		}
		return nil
	case *checkFlag != "":
		return checkTrace(*checkFlag)
	case *checkMFlag != "":
		return checkMetrics(*checkMFlag)
	}

	if *faultsFlag {
		*appFlag = "faults"
		*isoFlag = true
	}
	if *appFlag == "" {
		return fmt.Errorf("missing -app (use -list to see workloads)")
	}
	w, err := workloads.Get(*appFlag)
	if err != nil {
		return err
	}
	mk, err := sched.Maker(sched.Config{Name: *schedFlag})
	if err != nil {
		return err
	}

	tracerOpts := []obs.Option{obs.WithCapacity(*eventsFlag)}
	if *elogFlag != "" {
		// The task log adds one formatted effect string per task; only the
		// event-log export needs it.
		tracerOpts = append(tracerOpts, obs.WithTaskLog())
	}
	tr := obs.New(tracerOpts...)
	opts := []core.Option{core.WithTracer(tr)}
	var checker *isolcheck.Checker
	if *isoFlag {
		checker = isolcheck.New()
		checker.SetTracer(tr)
		opts = append(opts, core.WithMonitor(checker))
	}

	if err := w.Run(mk, *parFlag, opts...); err != nil {
		return fmt.Errorf("workload %s: %w", w.Name, err)
	}

	snap := tr.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr, "%s (%s, par=%d): %d submitted, %d completed, %d blocks, %d transfers\n",
		w.Name, *schedFlag, *parFlag,
		snap.TasksSubmitted, snap.TasksCompleted, snap.Blocks, snap.Transfers)
	fmt.Fprintf(os.Stderr, "  conflict checks %d, hits %d (rate %.3f); admission scans %d, tree node visits %d\n",
		snap.ConflictChecks, snap.ConflictHits, snap.ConflictHitRate(),
		snap.AdmissionScans, snap.TreeNodeVisits)
	fmt.Fprintf(os.Stderr, "  events recorded %d, dropped %d; peak pool running %d, peak queue depth %d\n",
		tr.Len(), tr.Dropped(), snap.PoolRunningPeak, snap.QueueDepthPeak)
	if snap.TasksCancelled+snap.TaskPanics+snap.DeadlinesExceeded+snap.DyneffRetries > 0 {
		fmt.Fprintf(os.Stderr, "  faults: %d cancelled, %d panics contained, %d deadlines exceeded, %d dyneff retries, %d breaker trips\n",
			snap.TasksCancelled, snap.TaskPanics, snap.DeadlinesExceeded, snap.DyneffRetries, snap.DyneffBreakerTrips)
	}
	if checker != nil {
		starts, peak := checker.Stats()
		fmt.Fprintf(os.Stderr, "  isolcheck: %d starts, peak %d concurrent, %d violations\n",
			starts, peak, len(checker.Violations()))
		for _, v := range checker.Violations() {
			fmt.Fprintln(os.Stderr, "  VIOLATION:", v)
		}
	}

	if *traceFlag != "" {
		if err := writeFile(*traceFlag, func(f *os.File) error { return tr.WriteChromeTrace(f) }); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  trace written to %s (load in https://ui.perfetto.dev)\n", *traceFlag)
	}
	if *metricsFlag != "" {
		wr := func(f *os.File) error { _, err := tr.Metrics().WriteTo(f); return err }
		if err := writeFile(*metricsFlag, wr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  metrics written to %s\n", *metricsFlag)
	}
	if *elogFlag != "" {
		if err := writeFile(*elogFlag, func(f *os.File) error { return tr.WriteEventLog(f) }); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  event log written to %s (validate with twe-spec -refine)\n", *elogFlag)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkTrace structurally validates a Chrome trace-event JSON file: it must
// parse, contain events, include at least one complete ("X") task span and
// thread-name metadata, and every event must carry the required keys.
// Request spans (cat "req", emitted by twe-serve -req-trace; DESIGN.md §14)
// are counted separately and each must carry a req arg; an admission-wait
// span that claims attribution ("admission-wait ← ...") must name the
// blocking task in blocked_on (waits that never stalled carry neither).
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}
	var spans, meta, reqSpans, waitSpans int
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			return fmt.Errorf("%s: event %d has no ph", path, i)
		}
		name, ok := ev["name"].(string)
		if !ok {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		switch ph {
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				return fmt.Errorf("%s: complete event %d has no dur", path, i)
			}
			if cat, _ := ev["cat"].(string); cat == "req" {
				reqSpans++
				args, _ := ev["args"].(map[string]any)
				if args == nil || args["req"] == nil {
					return fmt.Errorf("%s: req span %d (%s) has no req arg", path, i, name)
				}
				if strings.HasPrefix(name, "admission-wait ← ") {
					waitSpans++
					if s, _ := args["blocked_on"].(string); s == "" {
						return fmt.Errorf("%s: attributed admission-wait span %d has no blocked_on arg", path, i)
					}
				}
			}
			fallthrough
		case "i":
			if _, ok := ev["ts"]; !ok {
				return fmt.Errorf("%s: event %d has no ts", path, i)
			}
		case "M":
			meta++
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no task run spans (ph=X)", path)
	}
	if meta == 0 {
		return fmt.Errorf("%s: no thread metadata (ph=M)", path)
	}
	fmt.Printf("%s: ok (%d events, %d spans, %d metadata, %d req spans, %d attributed waits)\n",
		path, len(doc.TraceEvents), spans, meta, reqSpans, waitSpans)
	return nil
}

// requiredMetrics are the families every twe-trace metrics dump must expose.
var requiredMetrics = []string{
	"twe_tasks_submitted_total",
	"twe_tasks_completed_total",
	"twe_tasks_cancelled_total",
	"twe_task_panics_total",
	"twe_deadlines_exceeded_total",
	"twe_dyneff_retries_total",
	"twe_dyneff_breaker_trips_total",
	"twe_pool_panics_total",
	"twe_conflict_checks_total",
	"twe_sched_queue_depth_peak",
	"twe_pool_running_peak",
	"twe_admission_latency_seconds_bucket",
	"twe_admission_latency_seconds_count",
}

// checkMetrics validates a Prometheus text-format dump: every required
// family is present with HELP/TYPE headers, sample lines parse as
// name[{labels}] value, and the admission histogram's +Inf bucket equals
// its _count.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	seen := map[string]bool{}
	var help, typ int
	var infBucket, count float64
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		lines++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			help++
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			typ++
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("%s: malformed sample line %d: %q", path, lines, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("%s: line %d: bad value: %w", path, lines, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("%s: line %d: unterminated labels: %q", path, lines, line)
			}
			if strings.Contains(name, `le="+Inf"`) {
				infBucket = val
			}
			name = name[:i]
		}
		seen[name] = true
		if name == "twe_admission_latency_seconds_count" {
			count = val
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, m := range requiredMetrics {
		if !seen[m] {
			return fmt.Errorf("%s: missing metric %s", path, m)
		}
	}
	if help == 0 || typ == 0 {
		return fmt.Errorf("%s: missing # HELP / # TYPE headers", path)
	}
	if infBucket != count {
		return fmt.Errorf("%s: histogram +Inf bucket (%g) != count (%g)", path, infBucket, count)
	}
	fmt.Printf("%s: ok (%d metric families, histogram consistent)\n", path, len(seen))
	return nil
}
