// Command twe-sim executes TWEL programs under the formal dynamic
// semantics of tasks with effects (PPoPP 2013 §3.2, Fig. 3.4), exploring
// many schedules and checking the safety properties after every
// transition: task isolation, data-race freedom, and run-time effect
// coverage. It is the executable counterpart of the paper's K-framework
// semantics and doubles as a schedule fuzzer for TWEL programs.
//
// Usage: twe-sim [-main task] [-seeds n] [-steps n] [-args "1,2"] file.twel
// With no file, it simulates a built-in two-counter demo.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"twe/internal/core"
	"twe/internal/isolcheck"
	"twe/internal/lang"
	"twe/internal/sched"
	"twe/internal/semantics"
)

const demo = `
region A, B, Ctl;
var x in A;
var y in B;
task incX() effect writes A { local v = x; x = v + 1; }
task incY() effect writes B { local v = y; y = v + 1; }
task main() effect writes Ctl {
    let a = executeLater incX();
    let b = executeLater incY();
    let c = executeLater incX();
    getValue a;
    getValue b;
    getValue c;
}
`

func main() {
	mainTask := flag.String("main", "main", "task to launch")
	seeds := flag.Int("seeds", 50, "number of random schedules to explore")
	steps := flag.Int("steps", 200000, "step bound per schedule")
	argsFlag := flag.String("args", "", "comma-separated integer arguments for the main task")
	runtimeRuns := flag.Int("runtime", 0, "additionally compile and run the program N times on a real scheduler (with isolation monitor)")
	schedFlag := flag.String("sched", "tree", "scheduler for -runtime runs: "+sched.Usage())
	flag.Parse()

	src := demo
	name := "<demo>"
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		src, name = string(b), flag.Arg(0)
	}

	prog, err := lang.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(2)
	}
	if res := lang.Check(prog); !res.OK() {
		fmt.Fprintf(os.Stderr, "%s: static checks failed:\n", name)
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "  %v\n", e)
		}
		os.Exit(1)
	}

	var args []int
	if *argsFlag != "" {
		for _, part := range strings.Split(*argsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -args: %v\n", err)
				os.Exit(2)
			}
			args = append(args, n)
		}
	}

	violations := 0
	stuck := 0
	var lastStore map[string]int
	identical := true
	for seed := 0; seed < *seeds; seed++ {
		in := semantics.New(prog, int64(seed))
		if _, err := in.Launch(*mainTask, args...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !in.Run(*steps) {
			stuck++
			fmt.Printf("seed %d: did not quiesce within %d steps\n", seed, *steps)
			continue
		}
		for _, v := range in.Violations {
			violations++
			fmt.Printf("seed %d: VIOLATION %v\n", seed, v)
		}
		g := in.Globals()
		if lastStore == nil {
			lastStore = g
		} else if !sameStore(lastStore, g) {
			identical = false
		}
	}

	fmt.Printf("\n%s: %d schedules explored, %d violations, %d stuck\n", name, *seeds, violations, stuck)
	if lastStore != nil {
		keys := make([]string, 0, len(lastStore))
		for k := range lastStore {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("final store (last schedule):")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, lastStore[k])
		}
		fmt.Println()
	}
	if identical {
		fmt.Println("all schedules produced identical scalar stores (deterministic result)")
	} else {
		fmt.Println("schedules produced differing stores (program is nondeterministic)")
	}
	// Optionally run the same program on the real runtime (-sched
	// scheduler, 4-way pool, isolation monitor), closing the loop between
	// the formal semantics and the production scheduler.
	for r := 0; r < *runtimeRuns; r++ {
		chk := isolcheck.New()
		rt, err := sched.NewRuntime(sched.Config{Name: *schedFlag, PoolSize: 4}, core.WithMonitor(chk))
		if err != nil {
			fmt.Fprintln(os.Stderr, "twe-sim:", err)
			os.Exit(2)
		}
		c, err := lang.Compile(prog, rt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := c.Run(*mainTask, args...); err != nil {
			fmt.Fprintf(os.Stderr, "runtime run %d: %v\n", r, err)
			os.Exit(1)
		}
		rt.Shutdown()
		for _, v := range chk.Violations() {
			violations++
			fmt.Printf("runtime run %d: VIOLATION %v\n", r, v)
		}
	}
	if *runtimeRuns > 0 {
		fmt.Printf("real-runtime runs: %d completed on the %s scheduler\n", *runtimeRuns, *schedFlag)
	}

	if violations > 0 || stuck > 0 {
		os.Exit(1)
	}
}

func sameStore(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
